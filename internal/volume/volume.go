// Package volume implements a logical volume manager over N simulated
// disks. Each member is a full single-disk stack — its own disk model,
// SCAN queue, block table, fault injector, and (optionally) adaptive
// rearrangement — and the volume composes them behind the same
// driver.BlockDevice interface a single driver presents, so the file
// system, buffer cache, and workloads run unchanged on one spindle or
// eight.
//
// Five layouts are supported:
//
//   - concat: members are appended; logical block b lives on the first
//     member whose cumulative size exceeds b.
//   - stripe: logical blocks are distributed round-robin in stripe
//     units of a fixed number of blocks, RAID-0 style.
//   - mirror: every member holds a full replica, RAID-1 style. Writes
//     fan out to all live members; reads pick one live member by the
//     configured balancing policy and fail over to the others on error.
//   - raid5: rotating single parity; every stripe row dedicates one
//     member block to the XOR of the others, so any one member can die
//     (or lose a sector) and the volume keeps serving, reconstructing
//     on the fly. See parity.go.
//   - raid6: rotating double parity (P + Q over GF(2^8)); any two
//     simultaneous losses are survivable.
//
// The parity layouts also take hot spares (Options.Spare), rebuilt
// onto in the background under a foreground-yielding throttle, and a
// periodic scrub (Options.ScrubIntervalMS + StartScrub) that repairs
// latent sector errors before a second failure can compound them.
//
// Layout routing and mirror read balancing are pluggable seams — see
// the placement and Balancer interfaces in balance.go.
//
// A volume advances in a single simulated timeline and the
// fan-out/fan-in of mirror requests is fully deterministic: member
// completions are ordered by simulated (time, seq), the engine's fixed
// event ordering. By default all members share one event engine; with
// Options.Shards > 1 each member instead runs its own engine on its
// own goroutine under a sim.Coordinator, which merges completions back
// in the same global (time, seq) order — so sharded and unsharded runs
// of the same volume, and runs under any number of harness jobs, all
// yield byte-identical output. Callers drive a sharded volume through
// Run/RunUntil (which delegate to the coordinator) and must Close it
// when done to join the member goroutines.
//
// Degraded operation: a member whose driver has died (fault plan crash)
// is skipped by mirror reads and writes; the volume request succeeds as
// long as one replica remains. On concat and stripe there is no
// redundancy, so a dead member fails the volume request with the
// member's ErrDead.
package volume

import (
	"context"
	"fmt"

	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Layout selects how logical blocks map onto the members.
type Layout string

const (
	// Concat appends the members into one address space.
	Concat Layout = "concat"
	// Stripe distributes stripe units round-robin across the members.
	Stripe Layout = "stripe"
	// Mirror replicates every block on every member.
	Mirror Layout = "mirror"
	// RAID5 stripes with one rotating XOR parity block per stripe row.
	RAID5 Layout = "raid5"
	// RAID6 stripes with rotating P (XOR) and Q (GF(2^8)) parity.
	RAID6 Layout = "raid6"
)

// ReadPolicy selects how a mirror balances reads across live members.
type ReadPolicy string

const (
	// RoundRobin rotates reads across live members in index order.
	RoundRobin ReadPolicy = "round-robin"
	// ShortestQueue sends each read to the live member with the fewest
	// requests queued or in service, breaking ties by member index.
	ShortestQueue ReadPolicy = "shortest-queue"
)

// DefaultStripeUnit is the stripe unit, in file system blocks, when
// Options.StripeUnit is zero: 16 blocks (128 KB of 8 KB blocks).
const DefaultStripeUnit = 16

// DefaultRebuildRate is the rebuild/scrub pace ceiling, in member
// blocks per simulated second, when Options.RebuildRate is zero.
const DefaultRebuildRate = 200

// Options configures a volume.
type Options struct {
	// Ctx, when non-nil, cancels the shared engine once done.
	Ctx context.Context
	// Layout selects concat, stripe, mirror, raid5, or raid6; the zero
	// value selects concat.
	Layout Layout
	// Disks is the member count, excluding spares; zero selects 1.
	// Mirror needs at least 2, raid5 at least 3, raid6 at least 4.
	Disks int
	// StripeUnit is the stripe unit in blocks (stripe and parity
	// layouts); zero selects DefaultStripeUnit.
	StripeUnit int
	// ReadPolicy balances mirror reads; the zero value selects
	// round-robin.
	ReadPolicy ReadPolicy
	// Balancer overrides ReadPolicy with a custom read-balancing
	// implementation.
	Balancer Balancer
	// Spare adds this many hot-spare members (parity layouts only).
	// Spares idle until a member dies, then receive its reconstructed
	// contents block by block.
	Spare int
	// RebuildRate caps background rebuild and scrub at this many member
	// blocks per simulated second when the array is otherwise idle;
	// zero selects DefaultRebuildRate. The effective pace backs off
	// further as foreground queue depth grows.
	RebuildRate float64
	// ScrubIntervalMS, when positive on a parity layout, sets the
	// period of the background scrub pass; StartScrub arms it.
	ScrubIntervalMS float64
	// Disk selects the member drive model; the zero value selects the
	// Toshiba MK156F. All members use the same model.
	Disk disk.Model
	// ReservedCyls hides this many middle cylinders of every member as
	// its reserved region, enabling per-member adaptive rearrangement.
	ReservedCyls int
	// BlockSize is the file system block size; zero selects 8 KB.
	BlockSize geom.BlockSize
	// Sched is the per-member head-scheduling policy; nil selects SCAN.
	Sched sched.Scheduler
	// RequestTableSize overrides each member driver's monitoring table.
	RequestTableSize int
	// Faults lists per-member fault plans by member index (spares
	// follow the data members, at indices Disks..Disks+Spare-1); a
	// short list (or nil entries) leaves the remaining members
	// fault-free.
	Faults []*fault.Plan
	// Telemetry, when non-nil and capturing spans, receives every
	// member's request lifecycle stream, tagged with the member's disk
	// index via telemetry.TagDisk.
	Telemetry *telemetry.Collector
	// Shards enables parallel member execution: a value above 1 gives
	// every member disk its own engine and goroutine under a
	// sim.Coordinator (the value itself is a switch, not a pool size —
	// the natural decomposition is one shard per member; GOMAXPROCS
	// bounds actual parallelism). 0 or 1 selects the single shared
	// engine. Output is byte-identical either way. Span-capturing
	// telemetry forces the shared engine, since span sinks observe
	// member-side request lifecycles that have no fan-in ordering.
	Shards int
}

// Stats are volume-level request statistics, accumulated since the last
// ResetStats.
type Stats struct {
	// Requests, Reads and Writes count volume-level block requests.
	Requests int64
	Reads    int64
	Writes   int64
	// RespMSSum accumulates volume-level response times (request entry
	// to fan-in completion) in simulated milliseconds; RespMSSum /
	// Requests is the mean response time.
	RespMSSum float64
	// Errors counts volume requests that completed with an error.
	Errors int64
	// Degraded counts redundant-layout requests served with at least
	// one relevant member dead or unreadable (mirror: any member;
	// parity: a member of the request's stripe row).
	Degraded int64
	// PerDisk counts member operations issued, by member index
	// (spares included, after the data members). A mirror write
	// increments every live member's slot.
	PerDisk []int64
}

// Volume is a logical volume over member rigs. Like the rest of the
// stack it is event-driven and single-threaded on its engine.
type Volume struct {
	// Eng is the fan-in engine: the shared engine of every member when
	// unsharded, or the coordinator's main engine when sharded. The
	// file system, cache, workloads and rearrangers all run on it
	// either way; drive it through the volume's Run/RunUntil so the
	// sharded path engages the coordinator.
	Eng *sim.Engine
	// Members are the per-disk stacks, in disk-index order, hot spares
	// last. Callers may attach rearrangers or read per-member
	// counters, but must not issue raw I/O that bypasses the volume's
	// address map.
	Members []*rig.Rig

	layout Layout
	unit   int64
	policy ReadPolicy
	bs     geom.BlockSize
	lbl    *label.Label
	ctx    context.Context

	blocks int64   // logical volume size in blocks
	sizes  []int64 // usable blocks per member under this layout
	cum    []int64 // concat: cumulative start block per member

	// devs presents the members through the Device seam; place routes
	// requests for the layout; balancer orders redundant reads; ra is
	// the parity machinery, nil outside raid5/raid6.
	devs     []Device
	place    placement
	balancer Balancer
	ra       *raid

	// co is the shard coordinator, nil on the single-engine path.
	co *sim.Coordinator

	// free is the vreq pool; targets is the mirror write fan-out
	// scratch; bufFree pools block-size parity scratch buffers. All
	// are fan-in-side (main goroutine) only.
	free    *vreq
	targets []int
	bufFree [][]byte

	stats Stats
	// cumDegraded counts degraded mirror requests over the volume's
	// lifetime, unaffected by ResetStats — the feed for the
	// volume_degraded metric.
	cumDegraded int64
	// mxResp, when non-nil, receives one volume-level response time
	// per completed request. Bound by BindMetrics.
	mxResp *metrics.Histogram
}

// Volume is a BlockDevice: fs and cache mount it like a single disk.
var _ driver.BlockDevice = (*Volume)(nil)

// New builds a volume: one rig per member on a shared engine, plus the
// logical address map and a synthetic label describing the volume's
// single partition.
func New(opts Options) (*Volume, error) {
	if opts.Disks <= 0 {
		opts.Disks = 1
	}
	if opts.Layout == "" {
		opts.Layout = Concat
	}
	switch opts.Layout {
	case Concat, Stripe, Mirror, RAID5, RAID6:
	default:
		return nil, fmt.Errorf("volume: unknown layout %q", opts.Layout)
	}
	if opts.Layout == Mirror && opts.Disks < 2 {
		return nil, fmt.Errorf("volume: mirror needs at least 2 disks, got %d", opts.Disks)
	}
	if opts.Layout == RAID5 && opts.Disks < 3 {
		return nil, fmt.Errorf("volume: raid5 needs at least 3 disks, got %d", opts.Disks)
	}
	if opts.Layout == RAID6 && opts.Disks < 4 {
		return nil, fmt.Errorf("volume: raid6 needs at least 4 disks, got %d", opts.Disks)
	}
	parity := opts.Layout == RAID5 || opts.Layout == RAID6
	if opts.Spare < 0 {
		return nil, fmt.Errorf("volume: negative spare count %d", opts.Spare)
	}
	if opts.Spare > 0 && !parity {
		return nil, fmt.Errorf("volume: layout %q takes no hot spares", opts.Layout)
	}
	if opts.RebuildRate < 0 {
		return nil, fmt.Errorf("volume: negative rebuild rate %g", opts.RebuildRate)
	}
	if opts.ScrubIntervalMS > 0 && !parity {
		return nil, fmt.Errorf("volume: layout %q has no parity to scrub", opts.Layout)
	}
	if opts.StripeUnit <= 0 {
		opts.StripeUnit = DefaultStripeUnit
	}
	if opts.ReadPolicy == "" {
		opts.ReadPolicy = RoundRobin
	}
	switch opts.ReadPolicy {
	case RoundRobin, ShortestQueue:
	default:
		return nil, fmt.Errorf("volume: unknown read policy %q", opts.ReadPolicy)
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}

	eng := sim.NewEngine()
	if ctx := opts.Ctx; ctx != nil {
		eng.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	spans := opts.Telemetry != nil && opts.Telemetry.SpansEnabled()
	sharded := opts.Shards > 1 && opts.Disks > 1 && !spans

	v := &Volume{
		Eng:    eng,
		layout: opts.Layout,
		unit:   int64(opts.StripeUnit),
		policy: opts.ReadPolicy,
		ctx:    opts.Ctx,
	}
	nrigs := opts.Disks + opts.Spare
	if sharded {
		v.co = sim.NewCoordinator(eng, nrigs)
	}
	v.stats.PerDisk = make([]int64, nrigs)
	for i := 0; i < nrigs; i++ {
		var plan *fault.Plan
		if i < len(opts.Faults) {
			plan = opts.Faults[i]
		}
		mEng := eng
		if sharded {
			mEng = v.co.Shard(i).Engine()
		}
		m, err := rig.New(rig.Options{
			Eng:              mEng,
			Disk:             opts.Disk,
			ReservedCyls:     opts.ReservedCyls,
			BlockSize:        opts.BlockSize,
			Sched:            opts.Sched,
			RequestTableSize: opts.RequestTableSize,
			Fault:            plan,
		})
		if err != nil {
			v.Close()
			return nil, fmt.Errorf("volume: member %d: %w", i, err)
		}
		if sharded {
			m.Driver.BindShard(v.co.Shard(i))
		}
		if spans {
			m.Driver.SetSink(telemetry.TagDisk(i, opts.Telemetry))
		}
		v.Members = append(v.Members, m)
		v.devs = append(v.devs, m.Driver)
	}
	v.bs = v.Members[0].Driver.BlockSize()

	// The usable size per member and the logical size follow from the
	// layout. Members are identical models, but sizing from the actual
	// partitions keeps the map correct if that ever changes.
	min := v.Members[0].PartitionBlocks(0)
	for _, m := range v.Members[1:] {
		if n := m.PartitionBlocks(0); n < min {
			min = n
		}
	}
	switch v.layout {
	case Concat:
		var total int64
		for _, m := range v.Members {
			n := m.PartitionBlocks(0)
			v.cum = append(v.cum, total)
			v.sizes = append(v.sizes, n)
			total += n
		}
		v.blocks = total
	case Stripe:
		per := min / v.unit * v.unit
		if per == 0 {
			return nil, fmt.Errorf("volume: stripe unit %d larger than member (%d blocks)", v.unit, min)
		}
		for range v.Members {
			v.sizes = append(v.sizes, per)
		}
		v.blocks = per * int64(len(v.Members))
	case Mirror:
		for range v.Members {
			v.sizes = append(v.sizes, min)
		}
		v.blocks = min
	case RAID5, RAID6:
		per := min / v.unit * v.unit
		if per == 0 {
			return nil, fmt.Errorf("volume: stripe unit %d larger than member (%d blocks)", v.unit, min)
		}
		npar := 1
		if v.layout == RAID6 {
			npar = 2
		}
		for range v.Members {
			v.sizes = append(v.sizes, per)
		}
		v.blocks = per * int64(opts.Disks-npar)
		ra := &raid{
			v:            v,
			dbl:          v.layout == RAID6,
			npar:         npar,
			nslots:       opts.Disks,
			ndata:        opts.Disks - npar,
			unit:         v.unit,
			per:          per,
			rate:         opts.RebuildRate,
			scrubEveryMS: opts.ScrubIntervalMS,
			locks:        make(map[int64]*rowLock),
			slotRig:      make([]int, opts.Disks),
		}
		if ra.rate == 0 {
			ra.rate = DefaultRebuildRate
		}
		for s := range ra.slotRig {
			ra.slotRig[s] = s
		}
		for i := 0; i < opts.Spare; i++ {
			ra.spareRigs = append(ra.spareRigs, opts.Disks+i)
		}
		ra.copyFn = ra.copyStep
		v.ra = ra
	}

	v.balancer = opts.Balancer
	if v.balancer == nil {
		b, err := newBalancer(v.policy)
		if err != nil {
			v.Close()
			return nil, err
		}
		v.balancer = b
	}
	switch v.layout {
	case Mirror:
		v.place = mirrored{v}
	case RAID5, RAID6:
		v.place = v.ra
	default:
		v.place = linear{v}
	}

	lbl, err := v.makeLabel()
	if err != nil {
		v.Close()
		return nil, err
	}
	v.lbl = lbl
	return v, nil
}

// Run drives the simulation until every engine is quiescent: the
// coordinator's merged run when sharded, the shared engine's Run
// otherwise.
func (v *Volume) Run() {
	if v.co != nil {
		v.co.Run()
		return
	}
	v.Eng.Run()
}

// RunUntil drives the simulation through time t inclusive, then
// advances the clock to t, like sim.Engine.RunUntil.
func (v *Volume) RunUntil(t float64) {
	if v.co != nil {
		v.co.RunUntil(t)
		return
	}
	v.Eng.RunUntil(t)
}

// Now returns the fan-in engine's current simulated time.
func (v *Volume) Now() float64 { return v.Eng.Now() }

// Dispatched returns the total number of events fired across all the
// volume's engines; sharded and unsharded runs of the same program
// report the same count.
func (v *Volume) Dispatched() int64 {
	if v.co != nil {
		return v.co.Dispatched()
	}
	return v.Eng.Dispatched()
}

// Close releases the volume's resources: on the sharded path it shuts
// the coordinator down and joins the member goroutines (dropping any
// in-flight completions, so only call it when the run is over or
// cancelled). The single-engine path has nothing to release. Close is
// idempotent.
func (v *Volume) Close() {
	if v.ra != nil && v.ra.scrubCancel != nil {
		v.ra.scrubCancel()
		v.ra.scrubCancel = nil
	}
	if v.co != nil {
		v.co.Close()
	}
}

// makeLabel builds the synthetic in-memory label presented to the file
// system: the member geometry widened (or narrowed) to as many
// cylinders as the logical space needs, with one partition covering
// every logical block. It is never written to any disk — each member
// keeps its own on-disk label — it only tells the file system how big
// the device is and how long a "cylinder" is for allocation locality.
func (v *Volume) makeLabel() (*label.Label, error) {
	g := v.Members[0].Label.VirtualGeom()
	bsec := int64(v.bs.Sectors())
	sectors := v.blocks * bsec
	spc := int64(g.SectorsPerCyl())
	cyls := (sectors + spc - 1) / spc
	g.Cylinders = int(cyls)
	lbl := label.New(fmt.Sprintf("vol-%s-%d", v.layout, len(v.Members)), g)
	if _, err := lbl.AddPartition(0, sectors, label.TagFS); err != nil {
		return nil, err
	}
	return lbl, nil
}

// BlockSize implements driver.BlockDevice.
func (v *Volume) BlockSize() geom.BlockSize { return v.bs }

// Label implements driver.BlockDevice.
func (v *Volume) Label() *label.Label { return v.lbl }

// Blocks returns the logical volume size in blocks.
func (v *Volume) Blocks() int64 { return v.blocks }

// Layout returns the volume's layout.
func (v *Volume) Layout() Layout { return v.layout }

// DeadMembers returns how many members have died.
func (v *Volume) DeadMembers() int {
	var n int
	for _, m := range v.Members {
		if m.Driver.Dead() {
			n++
		}
	}
	return n
}

// RAID returns the parity layout's lifetime counters; the zero value
// on non-parity layouts.
func (v *Volume) RAID() RAIDStats {
	if v.ra == nil {
		return RAIDStats{}
	}
	return v.ra.cum
}

// Spares returns how many hot spares remain undrafted.
func (v *Volume) Spares() int {
	if v.ra == nil {
		return 0
	}
	return len(v.ra.spareRigs)
}

// Rebuilding reports whether a spare rebuild is in progress.
func (v *Volume) Rebuilding() bool { return v.ra != nil && v.ra.rebuild != nil }

// Err returns the volume's cancellation cause, as rig.Err does.
func (v *Volume) Err() error {
	if v.ctx == nil {
		return nil
	}
	return v.ctx.Err()
}

// Stats returns a snapshot of the volume-level statistics.
func (v *Volume) Stats() Stats {
	s := v.stats
	s.PerDisk = append([]int64(nil), v.stats.PerDisk...)
	return s
}

// BindMetrics registers the volume-level instruments in reg: the
// response-time distribution (request entry to fan-in completion, one
// observation per request from the moment of binding), the lifetime
// count of degraded mirror requests, and the current number of dead
// members. Call it from the fan-in goroutine; per-member driver
// metrics are bound separately on each member.
func (v *Volume) BindMetrics(reg *metrics.Registry) {
	v.mxResp = reg.Histogram("volume_resp_ms", metrics.HistogramOpts{})
	reg.CounterFunc("volume_degraded", func() int64 { return v.cumDegraded })
	reg.GaugeFunc("volume_dead_members", func() float64 { return float64(v.DeadMembers()) })
	if ra := v.ra; ra != nil {
		reg.CounterFunc("volume_degraded_reads", func() int64 { return ra.cum.DegradedReads })
		reg.CounterFunc("volume_parity_recomputes", func() int64 { return ra.cum.ParityRecomputes })
		reg.CounterFunc("volume_rebuilt_blocks", func() int64 { return ra.cum.RebuiltBlocks })
		reg.CounterFunc("volume_scrub_repairs", func() int64 { return ra.cum.ScrubRepairs })
		reg.GaugeFunc("volume_rebuild_progress", ra.rebuildProgress)
	}
}

// ResetStats clears the volume-level statistics (member drivers keep
// their own counters).
func (v *Volume) ResetStats() {
	per := v.stats.PerDisk
	for i := range per {
		per[i] = 0
	}
	v.stats = Stats{PerDisk: per}
}

// locate maps a logical block to (member index, member-relative block)
// for the concat and stripe layouts.
func (v *Volume) locate(blk int64) (int, int64) {
	switch v.layout {
	case Stripe:
		su := blk / v.unit
		n := int64(len(v.Members))
		return int(su % n), (su/n)*v.unit + blk%v.unit
	default: // Concat
		i := len(v.cum) - 1
		for i > 0 && blk < v.cum[i] {
			i--
		}
		return i, blk - v.cum[i]
	}
}

// check validates the partition and block of a volume request.
func (v *Volume) check(part int, blk int64) error {
	if part != 0 {
		_, err := v.lbl.Partition(part)
		if err == nil {
			err = fmt.Errorf("volume: no partition %d", part)
		}
		return err
	}
	if blk < 0 || blk >= v.blocks {
		return fmt.Errorf("%w: block %d of volume (%d blocks)", driver.ErrBadBlock, blk, v.blocks)
	}
	return nil
}

// fail reports an error asynchronously, preserving the rule that
// completion callbacks never run inside the issuing call.
func (v *Volume) fail(done driver.DoneFunc, err error) {
	v.stats.Errors++
	v.Eng.After(0, func() {
		if done != nil {
			done(nil, err)
		}
	})
}

// vreq is the volume's pooled per-request record: response-time
// accounting, mirror failover and fan-in state, and the completion
// callbacks handed to member drivers, prebuilt once per record so a
// steady-state volume request allocates nothing at the volume layer
// (the fan-out closures used to dominate the allocation profile of
// volume-scale runs). Records live on the fan-in side only — every
// field is touched on the main goroutine — so the pool needs no lock.
type vreq struct {
	v    *Volume
	next *vreq

	start float64
	done  driver.DoneFunc
	blk   int64 // mirror read: the member-relative (= logical) block

	order []int // mirror read: failover order; backing array reused
	k     int   // mirror read: index in order of the attempt in flight

	pending  int // mirror write: outstanding member writes
	wrote    int // mirror write: successful member writes
	firstErr error

	finishCB driver.DoneFunc // account, recycle, run the caller's done
	readCB   driver.DoneFunc // mirror read fan-in with failover
	writeCB  driver.DoneFunc // mirror write fan-in (any-replica success)
}

// getReq pops a pooled request record, building one — with its
// reusable completion closures — on first use.
func (v *Volume) getReq() *vreq {
	r := v.free
	if r == nil {
		r = &vreq{v: v}
		r.finishCB = func(data []byte, err error) {
			vol := r.v
			resp := vol.Eng.Now() - r.start
			vol.stats.RespMSSum += resp
			if vol.mxResp != nil {
				vol.mxResp.Record(resp)
			}
			if err != nil {
				vol.stats.Errors++
			}
			done := r.done
			vol.putReq(r)
			if done != nil {
				done(data, err)
			}
		}
		r.readCB = func(data []byte, err error) {
			if err != nil && r.k+1 < len(r.order) {
				// Fail over to the next replica; the dead or erroring
				// member is out of rotation once Dead() reports it.
				vol := r.v
				vol.stats.Degraded++
				vol.cumDegraded++
				r.k++
				i := r.order[r.k]
				vol.stats.PerDisk[i]++
				vol.Members[i].Driver.ReadBlock(0, r.blk, r.readCB)
				return
			}
			r.finishCB(data, err)
		}
		r.writeCB = func(_ []byte, err error) {
			if err == nil {
				r.wrote++
			} else if r.firstErr == nil {
				r.firstErr = err
			}
			r.pending--
			if r.pending > 0 {
				return
			}
			if r.wrote > 0 {
				r.finishCB(nil, nil)
			} else {
				r.finishCB(nil, r.firstErr)
			}
		}
		return r
	}
	v.free = r.next
	r.next = nil
	return r
}

// putReq recycles a finished record. The caller's done reference is
// cleared so the pool does not pin callback closures; the order
// backing array survives for reuse.
func (v *Volume) putReq(r *vreq) {
	r.done, r.firstErr = nil, nil
	r.order = r.order[:0]
	r.start, r.blk = 0, 0
	r.k, r.pending, r.wrote = 0, 0, 0
	r.next = v.free
	v.free = r
}

// ReadBlock implements driver.BlockDevice: it reads one logical block
// of the volume. done fires at fan-in completion in simulated time.
func (v *Volume) ReadBlock(part int, blk int64, done driver.DoneFunc) {
	if err := v.check(part, blk); err != nil {
		v.fail(done, err)
		return
	}
	v.stats.Requests++
	v.stats.Reads++
	v.place.read(blk, done)
}

// appendReadOrder appends the member indices a balanced read should
// try, best candidate first, per the volume's Balancer. Only live
// members appear. The caller passes a reused backing slice, so the
// hot path allocates nothing.
func (v *Volume) appendReadOrder(order []int) []int {
	return v.balancer.Order(v, order)
}

// WriteBlock implements driver.BlockDevice: it writes one logical block
// of the volume. done fires at fan-in completion; redundant layouts
// succeed as long as enough members took the write to keep the block
// durable (mirror: any replica; parity: failures within the parity
// budget).
func (v *Volume) WriteBlock(part int, blk int64, data []byte, done driver.DoneFunc) {
	if err := v.check(part, blk); err != nil {
		v.fail(done, err)
		return
	}
	if len(data) != v.bs.Bytes() {
		v.fail(done, fmt.Errorf("volume: write of %d bytes, block size is %d", len(data), v.bs.Bytes()))
		return
	}
	v.stats.Requests++
	v.stats.Writes++
	v.place.write(blk, data, done)
}

// getBuf pops a pooled block-size scratch buffer for parity math;
// putBuf returns one. Fan-in side only, like the request pools.
func (v *Volume) getBuf() []byte {
	if n := len(v.bufFree); n > 0 {
		b := v.bufFree[n-1]
		v.bufFree = v.bufFree[:n-1]
		return b
	}
	return make([]byte, v.bs.Bytes())
}

func (v *Volume) putBuf(b []byte) { v.bufFree = append(v.bufFree, b) }
