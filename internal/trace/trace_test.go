package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rig"
)

func sample() []Record {
	return []Record{
		{TimeMS: 0.125, Write: false, Part: 0, Block: 42},
		{TimeMS: 17.5, Write: true, Part: 1, Block: 9999},
		{TimeMS: 18.0, Write: false, Part: 0, Block: 0},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("%d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestBinaryRejectsWidePartition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Record{{Part: 300}}); err == nil {
		t.Error("partition 300 accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTextRejectsBadLines(t *testing.T) {
	if _, err := ReadText(bytes.NewReader([]byte("1.0 X 0 5\n"))); err == nil {
		t.Error("bad direction accepted")
	}
	if _, err := ReadText(bytes.NewReader([]byte("hello\n"))); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(times []uint32, blocks []uint16, writes []bool) bool {
		n := len(times)
		if len(blocks) < n {
			n = len(blocks)
		}
		if len(writes) < n {
			n = len(writes)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				TimeMS: float64(times[i]) / 64,
				Write:  writes[i],
				Part:   i % 4,
				Block:  int64(blocks[i]),
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCaptureAndReplay(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	cap := NewCapture(r.Eng, r.Driver)
	blockData := make([]byte, r.Driver.BlockSize().Bytes())
	r.Eng.At(10, func() { r.Driver.ReadBlock(0, 100, nil) })
	r.Eng.At(20, func() { r.Driver.WriteBlock(0, 200, blockData, nil) })
	r.Eng.At(30, func() { r.Driver.ReadBlock(0, 100, nil) })
	r.Eng.Run()
	cap.Close()
	recs := cap.Records()
	if len(recs) != 3 {
		t.Fatalf("captured %d records", len(recs))
	}
	if recs[0].TimeMS != 10 || recs[1].TimeMS != 20 {
		t.Errorf("timestamps = %v, %v", recs[0].TimeMS, recs[1].TimeMS)
	}
	if !recs[1].Write || recs[1].Block != 200 {
		t.Errorf("record 1 = %+v", recs[1])
	}

	// Replay into a fresh rig; the driver should see the same requests.
	r2, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	var completed, errs int
	Replay(r2.Eng, r2.Driver, recs, func(c, e int) { completed, errs = c, e })
	r2.Eng.Run()
	if completed != 3 || errs != 0 {
		t.Fatalf("replay completed=%d errs=%d", completed, errs)
	}
	st := r2.Driver.ReadStats()
	if st.ReadSide.Count() != 2 || st.WriteSide.Count() != 1 {
		t.Errorf("replayed %d reads, %d writes", st.ReadSide.Count(), st.WriteSide.Count())
	}
}

func TestReplayEmpty(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	var called bool
	Replay(r.Eng, r.Driver, nil, func(c, e int) { called = c == 0 && e == 0 })
	r.Eng.Run()
	if !called {
		t.Error("empty replay never completed")
	}
}

func TestCaptureIgnoresInternalTraffic(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	blockData := make([]byte, r.Driver.BlockSize().Bytes())
	r.Driver.WriteBlock(0, 10, blockData, nil)
	r.Eng.Run()
	cap := NewCapture(r.Eng, r.Driver)
	orig := r.Label.MapVirtual(16 + 10*16)
	r.Driver.BCopy(orig, r.Driver.ReservedSlots()[0][0], nil)
	r.Eng.Run()
	cap.Close()
	if n := len(cap.Records()); n != 0 {
		t.Errorf("captured %d internal records", n)
	}
}
