// Package trace implements block-request traces: capture from a running
// driver, a compact binary encoding, a line-oriented text encoding, and
// replay into a driver.
//
// The paper's technique was first validated by trace-driven simulation
// ([Akyurek 93]); this package provides the equivalent capability for
// the reproduced system — a workload can be captured once and replayed
// against different disks, policies, or schedulers.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/driver"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Record is one block request: its arrival time in simulated
// milliseconds, direction, partition, and partition-relative block
// number.
type Record struct {
	TimeMS float64
	Write  bool
	Part   int
	Block  int64
}

// Magic identifies a binary trace stream ("ABRT").
const Magic uint32 = 0x41425254

// Version is the current binary format version.
const Version uint16 = 1

// ErrBadHeader is returned when a binary trace header is invalid.
var ErrBadHeader = errors.New("trace: bad header")

const recordSize = 18 // time f64 | flags u8 | part u8 | block i64

// WriteBinary writes records in the compact binary format.
func WriteBinary(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	binary.BigEndian.PutUint16(hdr[4:], Version)
	binary.BigEndian.PutUint32(hdr[6:], uint32(len(records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range records {
		binary.BigEndian.PutUint64(buf[0:], math.Float64bits(r.TimeMS))
		var flags byte
		if r.Write {
			flags |= 1
		}
		buf[8] = flags
		if r.Part < 0 || r.Part > 255 {
			return fmt.Errorf("trace: partition %d does not fit the format", r.Part)
		}
		buf[9] = byte(r.Part)
		binary.BigEndian.PutUint64(buf[10:], uint64(r.Block))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ScanBinary reads a binary trace stream record by record, calling emit
// for each. It never materializes the whole trace, so arbitrarily large
// streams parse in constant memory. An error from emit aborts the scan
// and is returned unchanged.
func ScanBinary(r io.Reader, emit func(Record) error) error {
	br := bufio.NewReader(r)
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != Magic {
		return ErrBadHeader
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != Version {
		return fmt.Errorf("%w: version %d", ErrBadHeader, v)
	}
	n := int(binary.BigEndian.Uint32(hdr[6:]))
	var buf [recordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		rec := Record{
			TimeMS: math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
			Write:  buf[8]&1 != 0,
			Part:   int(buf[9]),
			Block:  int64(binary.BigEndian.Uint64(buf[10:])),
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads a binary trace stream.
func ReadBinary(r io.Reader) ([]Record, error) {
	var out []Record
	if err := ScanBinary(r, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteText writes records as one line each: "<timeMS> <R|W> <part>
// <block>". Times are formatted with the shortest decimal that parses
// back to the identical float64, so a text round trip is lossless —
// the same guarantee the binary format gives.
func WriteText(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	var scratch [32]byte
	for _, r := range records {
		dir := " R "
		if r.Write {
			dir = " W "
		}
		if _, err := bw.Write(strconv.AppendFloat(scratch[:0], r.TimeMS, 'f', -1, 64)); err != nil {
			return err
		}
		if _, err := bw.WriteString(dir); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", r.Part, r.Block); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ScanText parses the text format line by line, calling emit for each
// record. An error from emit aborts the scan and is returned unchanged.
func ScanText(r io.Reader, emit func(Record) error) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Text()) == 0 {
			continue
		}
		var rec Record
		var dir string
		if _, err := fmt.Sscanf(sc.Text(), "%f %s %d %d", &rec.TimeMS, &dir, &rec.Part, &rec.Block); err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch dir {
		case "R":
		case "W":
			rec.Write = true
		default:
			return fmt.Errorf("trace: line %d: direction %q", line, dir)
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadText parses the text format.
func ReadText(r io.Reader) ([]Record, error) {
	var out []Record
	if err := ScanText(r, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Capture records every file system block request issued to the driver
// while attached. It consumes the driver's telemetry event stream,
// keeping only the KindRequest events (the pre-translation block
// addresses a trace replays).
type Capture struct {
	eng     *sim.Engine
	drv     *driver.Driver
	records []Record
}

// NewCapture attaches a capture sink to the driver. It replaces any
// sink already attached; detach it with Close before attaching another.
func NewCapture(eng *sim.Engine, drv *driver.Driver) *Capture {
	c := &Capture{eng: eng, drv: drv}
	drv.SetSink(telemetry.SinkFunc(func(e *telemetry.Event) {
		if e.Kind != telemetry.KindRequest {
			return
		}
		c.records = append(c.records, Record{
			TimeMS: e.TimeMS,
			Write:  e.Write,
			Part:   e.Part,
			Block:  e.Block,
		})
	}))
	return c
}

// Records returns the captured records.
func (c *Capture) Records() []Record { return c.records }

// Close detaches the capture sink.
func (c *Capture) Close() { c.drv.SetSink(nil) }

// Replay schedules every record against the driver at its recorded time
// (shifted to start at the engine's current time), and calls done when
// the last request completes. Writes replay zero-filled blocks. Run the
// engine to drive the replay.
func Replay(eng *sim.Engine, drv *driver.Driver, records []Record, done func(completed int, errs int)) {
	if len(records) == 0 {
		eng.After(0, func() {
			if done != nil {
				done(0, 0)
			}
		})
		return
	}
	base := eng.Now() - records[0].TimeMS
	zero := make([]byte, drv.BlockSize().Bytes())
	remaining := len(records)
	completed, errs := 0, 0
	finish := func(err error) {
		if err != nil {
			errs++
		} else {
			completed++
		}
		remaining--
		if remaining == 0 && done != nil {
			done(completed, errs)
		}
	}
	for _, r := range records {
		r := r
		eng.At(base+r.TimeMS, func() {
			if r.Write {
				drv.WriteBlock(r.Part, r.Block, zero, func(_ []byte, err error) { finish(err) })
			} else {
				drv.ReadBlock(r.Part, r.Block, func(_ []byte, err error) { finish(err) })
			}
		})
	}
}
