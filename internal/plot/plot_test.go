package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "ms",
		YLabel: "frac",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 0.5, 0.8, 1}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{0, 0.2, 0.4, 0.6}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: ms   y: frac") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("no marks drawn")
	}
	// 16 plot rows + frame.
	if got := strings.Count(out, "|"); got < 16 {
		t.Errorf("%d plot rows", got)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart rendered: %q", out)
	}
}

func TestMarksCoverDiagonal(t *testing.T) {
	// An increasing series over the full range puts one mark in every
	// column, with the extremes in the bottom-left and top-right corners.
	c := Chart{
		Width: 40, Height: 10,
		Series: []Series{{
			Name: "up",
			X:    seq(0, 39),
			Y:    seq(0, 39),
		}},
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	if got := strings.Count(out, "*"); got != 40+1 { // 40 marks + legend
		t.Errorf("%d marks drawn, want 40 (+1 legend)", got)
	}
	firstCol := strings.Index(lines[0], "|") + 1
	if lines[0][firstCol+39] != '*' {
		t.Errorf("top-right corner not marked:\n%s", out)
	}
	if lines[9][firstCol] != '*' {
		t.Errorf("bottom-left corner not marked:\n%s", out)
	}
}

func TestLogXSkipsNonPositive(t *testing.T) {
	c := Chart{
		LogX: true,
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 10, 100}, // 0 must be skipped
			Y:    []float64{5, 1, 2, 3},
		}},
	}
	out := c.Render()
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("log-x chart mangled:\n%s", out)
	}
}

func TestFixedYRange(t *testing.T) {
	c := Chart{
		YMin: 0, YMax: 1,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0.5, 2}}}, // 2 clipped
	}
	out := c.Render()
	if !strings.Contains(out, "1") {
		t.Errorf("y max label missing:\n%s", out)
	}
}

func seq(a, b int) []float64 {
	out := make([]float64, 0, b-a+1)
	for i := a; i <= b; i++ {
		out = append(out, float64(i))
	}
	return out
}
