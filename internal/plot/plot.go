// Package plot renders simple ASCII line charts for the paper's figures
// (service-time CDFs, block-access distributions, the Figure 8 sweep),
// so `abrsim` can show the curves themselves and not just sampled rows.
//
// Charts are deliberately plain: a fixed-size character grid, one mark
// per series, linear or log-x axes, and a legend. They render anywhere a
// terminal does and diff cleanly in recorded outputs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// X and Y must have equal lengths; points are drawn independently
	// (no interpolation), so supply enough of them.
	X, Y []float64
	// Mark is the character used for this series; zero picks from a
	// default set.
	Mark byte
}

// Chart is an ASCII chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area size in characters; zeros
	// select 64×16.
	Width, Height int
	// LogX plots x on a log10 axis (x values must be positive).
	LogX bool
	// YMin/YMax fix the y range; when both are zero the range is fitted
	// to the data.
	YMin, YMax float64
	Series     []Series
}

var defaultMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xval(s.X[i])
			if math.IsNaN(x) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data
		return c.Title + "\n(no data)\n"
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := s.Mark
		if mark == 0 {
			mark = defaultMarks[si%len(defaultMarks)]
		}
		for i := range s.X {
			x := c.xval(s.X[i])
			if math.IsNaN(x) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[row][col] = mark
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.2g", ymax)
	yBot := fmt.Sprintf("%.2g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	lo, hi := c.xdisplay(xmin), c.xdisplay(xmax)
	xAxis := fmt.Sprintf("%.4g%s%.4g", lo, strings.Repeat(" ", max(1, w-12)), hi)
	fmt.Fprintf(&sb, "%s  %s\n", strings.Repeat(" ", pad), xAxis)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		mark := s.Mark
		if mark == 0 {
			mark = defaultMarks[si%len(defaultMarks)]
		}
		fmt.Fprintf(&sb, "%s  %c = %s\n", strings.Repeat(" ", pad), mark, s.Name)
	}
	return sb.String()
}

// xval maps an x value onto the plotting axis.
func (c Chart) xval(x float64) float64 {
	if !c.LogX {
		return x
	}
	if x <= 0 {
		return math.NaN()
	}
	return math.Log10(x)
}

// xdisplay maps an axis value back to display units.
func (c Chart) xdisplay(x float64) float64 {
	if !c.LogX {
		return x
	}
	return math.Pow(10, x)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
