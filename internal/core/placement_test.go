package core

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/hotlist"
)

// figure3Slots builds a reserved region shaped like Figure 3 of the
// paper: three cylinders of four block slots each, presented in
// organ-pipe fill order (middle cylinder first). Slot addresses encode
// cylinder c, slot s as (1000*c + 16*s) so tests can decode them.
func figure3Slots() [][]int64 {
	mk := func(c int) []int64 {
		out := make([]int64, 4)
		for s := range out {
			out[s] = int64(1000*c + 16*s)
		}
		return out
	}
	return [][]int64{mk(1), mk(2), mk(0)} // middle, right, left
}

func hotN(counts ...int64) []hotlist.BlockCount {
	out := make([]hotlist.BlockCount, len(counts))
	for i, c := range counts {
		out[i] = hotlist.BlockCount{Block: int64((i + 1) * 160), Count: c}
	}
	return out
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"organ-pipe", "organpipe", "interleaved", "serial"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestOrganPipeFillsMiddleFirst(t *testing.T) {
	slots := figure3Slots()
	hot := hotN(100, 90, 80, 70, 60, 50, 40, 30, 20, 10, 5, 1)
	moves := OrganPipe{}.Place(hot, slots, 12, geom.Block8K)
	if len(moves) != 12 {
		t.Fatalf("%d moves", len(moves))
	}
	// The four hottest land on cylinder 1 (the middle).
	for i := 0; i < 4; i++ {
		if moves[i].Dst/1000 != 1 {
			t.Errorf("hot block %d placed on cylinder %d, want middle", i, moves[i].Dst/1000)
		}
		if moves[i].Orig != hot[i].Block {
			t.Errorf("move %d places block %d, want %d", i, moves[i].Orig, hot[i].Block)
		}
	}
	// Next four on cylinder 2, last four on cylinder 0.
	for i := 4; i < 8; i++ {
		if moves[i].Dst/1000 != 2 {
			t.Errorf("block %d on cylinder %d, want 2", i, moves[i].Dst/1000)
		}
	}
	for i := 8; i < 12; i++ {
		if moves[i].Dst/1000 != 0 {
			t.Errorf("block %d on cylinder %d, want 0", i, moves[i].Dst/1000)
		}
	}
}

func TestOrganPipeRespectsMaxBlocks(t *testing.T) {
	moves := OrganPipe{}.Place(hotN(9, 8, 7, 6, 5), figure3Slots(), 3, geom.Block8K)
	if len(moves) != 3 {
		t.Errorf("%d moves, want 3", len(moves))
	}
}

func TestOrganPipeRespectsCapacity(t *testing.T) {
	hot := make([]hotlist.BlockCount, 100)
	for i := range hot {
		hot[i] = hotlist.BlockCount{Block: int64(i+1) * 160, Count: int64(100 - i)}
	}
	moves := OrganPipe{}.Place(hot, figure3Slots(), 100, geom.Block8K)
	if len(moves) != 12 {
		t.Errorf("%d moves, want capacity 12", len(moves))
	}
}

func TestCapBlocksDropsMalformed(t *testing.T) {
	hot := []hotlist.BlockCount{
		{Block: 160, Count: 10},
		{Block: 161, Count: 9}, // unaligned
		{Block: -16, Count: 8}, // negative
		{Block: 160, Count: 7}, // duplicate
		{Block: 320, Count: 6},
	}
	moves := OrganPipe{}.Place(hot, figure3Slots(), 10, geom.Block8K)
	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2", len(moves))
	}
	if moves[0].Orig != 160 || moves[1].Orig != 320 {
		t.Errorf("moves = %+v", moves)
	}
}

func TestSerialPlacesInAddressOrder(t *testing.T) {
	hot := []hotlist.BlockCount{
		{Block: 4800, Count: 100},
		{Block: 160, Count: 90},
		{Block: 3200, Count: 80},
	}
	moves := Serial{}.Place(hot, figure3Slots(), 10, geom.Block8K)
	if len(moves) != 3 {
		t.Fatalf("%d moves", len(moves))
	}
	// Origs ascending.
	if moves[0].Orig != 160 || moves[1].Orig != 3200 || moves[2].Orig != 4800 {
		t.Errorf("orig order = %v %v %v", moves[0].Orig, moves[1].Orig, moves[2].Orig)
	}
	// Destinations ascending by sector (cylinder 0 first), regardless of
	// organ-pipe grouping.
	if !(moves[0].Dst < moves[1].Dst && moves[1].Dst < moves[2].Dst) {
		t.Errorf("dst order = %v %v %v", moves[0].Dst, moves[1].Dst, moves[2].Dst)
	}
	if moves[0].Dst/1000 != 0 {
		t.Errorf("first serial slot on cylinder %d, want 0", moves[0].Dst/1000)
	}
}

func TestInterleavedPlacesChains(t *testing.T) {
	// Blocks 160 and 160+2*16=192 form a successor pair (stride 2,
	// frequencies within 50%); they must be placed stride slots apart in
	// the middle cylinder.
	hot := []hotlist.BlockCount{
		{Block: 160, Count: 100},
		{Block: 192, Count: 60}, // successor of 160 (60 >= 50)
		{Block: 9600, Count: 50},
	}
	p := NewInterleaved(2)
	moves := p.Place(hot, figure3Slots(), 10, geom.Block8K)
	if len(moves) != 3 {
		t.Fatalf("%d moves: %+v", len(moves), moves)
	}
	byOrig := map[int64]int64{}
	for _, m := range moves {
		byOrig[m.Orig] = m.Dst
	}
	d0, d1 := byOrig[160], byOrig[192]
	if d0/1000 != 1 || d1/1000 != 1 {
		t.Fatalf("chain not on middle cylinder: %v %v", d0, d1)
	}
	// Slot indices differ by the stride.
	if (d1%1000)/16-(d0%1000)/16 != 2 {
		t.Errorf("chain members %d and %d not separated by stride", d0, d1)
	}
}

func TestInterleavedBreaksChainOnFrequency(t *testing.T) {
	// 192's count is below 50% of 160's, so it is NOT a successor; it is
	// placed as its own chain head at the next free slot instead.
	hot := []hotlist.BlockCount{
		{Block: 160, Count: 100},
		{Block: 192, Count: 20},
	}
	p := NewInterleaved(2)
	moves := p.Place(hot, figure3Slots(), 10, geom.Block8K)
	byOrig := map[int64]int64{}
	for _, m := range moves {
		byOrig[m.Orig] = m.Dst
	}
	if (byOrig[192]%1000)/16-(byOrig[160]%1000)/16 == 2 {
		t.Error("non-successor was chained")
	}
	// Both are still placed (as separate chain heads).
	if len(moves) != 2 {
		t.Errorf("%d moves", len(moves))
	}
}

func TestInterleavedChainStopsAtCylinderEdge(t *testing.T) {
	// A long chain cannot run past the end of a cylinder: the chain
	// breaks and the rest start fresh.
	hot := []hotlist.BlockCount{
		{Block: 160, Count: 100},
		{Block: 192, Count: 90},
		{Block: 224, Count: 80},
		{Block: 256, Count: 70},
	}
	p := NewInterleaved(2)
	moves := p.Place(hot, figure3Slots(), 10, geom.Block8K)
	if len(moves) != 4 {
		t.Fatalf("%d moves", len(moves))
	}
	// Slots per cylinder = 4, stride 2: chain fits 160@0, 192@2, then
	// 224 would need slot 4 (out of range) -> becomes a new head at
	// slot 1, and 256 chains from it to slot 3.
	byOrig := map[int64]int64{}
	for _, m := range moves {
		byOrig[m.Orig] = m.Dst
	}
	slot := func(b int64) int64 { return (byOrig[b] % 1000) / 16 }
	if slot(160) != 0 || slot(192) != 2 || slot(224) != 1 || slot(256) != 3 {
		t.Errorf("slots = %d %d %d %d", slot(160), slot(192), slot(224), slot(256))
	}
	// All on the middle cylinder.
	for _, b := range []int64{160, 192, 224, 256} {
		if byOrig[b]/1000 != 1 {
			t.Errorf("block %d on cylinder %d", b, byOrig[b]/1000)
		}
	}
}

func TestInterleavedStrideFloor(t *testing.T) {
	p := NewInterleaved(0)
	if p.Stride != 1 {
		t.Errorf("stride floor = %d", p.Stride)
	}
}

func TestPoliciesNeverDuplicateSlotsOrBlocks(t *testing.T) {
	policies := []Policy{OrganPipe{}, NewInterleaved(2), Serial{}}
	f := func(raw []uint16, maxRaw uint8) bool {
		hot := make([]hotlist.BlockCount, 0, len(raw))
		for i, r := range raw {
			hot = append(hot, hotlist.BlockCount{
				Block: int64(r) * 16,
				Count: int64(len(raw) - i),
			})
		}
		max := int(maxRaw)%16 + 1
		for _, p := range policies {
			moves := p.Place(hot, figure3Slots(), max, geom.Block8K)
			if len(moves) > max || len(moves) > 12 {
				return false
			}
			origs := map[int64]bool{}
			dsts := map[int64]bool{}
			for _, m := range moves {
				if origs[m.Orig] || dsts[m.Dst] {
					return false
				}
				origs[m.Orig] = true
				dsts[m.Dst] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoliciesPlaceOnlyGivenSlots(t *testing.T) {
	slots := figure3Slots()
	valid := map[int64]bool{}
	for _, cyl := range slots {
		for _, s := range cyl {
			valid[s] = true
		}
	}
	hot := hotN(12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1)
	for _, p := range []Policy{OrganPipe{}, NewInterleaved(2), Serial{}} {
		for _, m := range p.Place(hot, slots, 100, geom.Block8K) {
			if !valid[m.Dst] {
				t.Errorf("%s placed a block at %d, not a reserved slot", p.Name(), m.Dst)
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, p := range []Policy{OrganPipe{}, NewInterleaved(2), Serial{}} {
		if moves := p.Place(nil, figure3Slots(), 10, geom.Block8K); len(moves) != 0 {
			t.Errorf("%s placed %d moves from empty hot list", p.Name(), len(moves))
		}
		if moves := p.Place(hotN(5, 4), nil, 10, geom.Block8K); len(moves) != 0 {
			t.Errorf("%s placed %d moves with no slots", p.Name(), len(moves))
		}
	}
}
