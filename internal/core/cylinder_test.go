package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/hotlist"
)

// spc is the test disk's cylinder size in sectors (Toshiba: 10×34).
const spc = 340

// blockIn returns the k-th block-aligned sector inside cylinder c (a
// 340-sector cylinder boundary is not itself 16-aligned).
func blockIn(c, k int64) int64 { return (c*spc+15)/16*16 + k*16 }

func TestCylinderPolicyGroupsBySourceCylinder(t *testing.T) {
	p := NewCylinderOrganPipe(spc)
	// Two source cylinders: cylinder 5 (hot, 3 blocks) and cylinder 9
	// (cooler, 2 blocks).
	hot := []hotlist.BlockCount{
		{Block: blockIn(5, 0), Count: 50},
		{Block: blockIn(5, 2), Count: 40},
		{Block: blockIn(9, 1), Count: 30},
		{Block: blockIn(5, 4), Count: 20},
		{Block: blockIn(9, 3), Count: 10},
	}
	slots := figure3Slots()
	moves := p.Place(hot, slots, 100, geom.Block8K)
	if len(moves) != 5 {
		t.Fatalf("%d moves", len(moves))
	}
	dstCyl := map[int64]int64{}
	for _, m := range moves {
		dstCyl[m.Orig] = m.Dst / 1000
	}
	// All of source cylinder 5 (total count 110) goes to the middle
	// reserved cylinder (1); source cylinder 9 (total 40) to the next
	// in organ-pipe order (2).
	for _, b := range []int64{blockIn(5, 0), blockIn(5, 2), blockIn(5, 4)} {
		if dstCyl[b] != 1 {
			t.Errorf("hot-cylinder block %d placed on reserved cylinder %d, want 1", b, dstCyl[b])
		}
	}
	for _, b := range []int64{blockIn(9, 1), blockIn(9, 3)} {
		if dstCyl[b] != 2 {
			t.Errorf("cool-cylinder block %d placed on reserved cylinder %d, want 2", b, dstCyl[b])
		}
	}
}

func TestCylinderPolicyPreservesIntraCylinderOrder(t *testing.T) {
	p := NewCylinderOrganPipe(spc)
	hot := []hotlist.BlockCount{
		{Block: blockIn(5, 4), Count: 10},
		{Block: blockIn(5, 0), Count: 9},
		{Block: blockIn(5, 2), Count: 8},
	}
	moves := p.Place(hot, figure3Slots(), 100, geom.Block8K)
	if len(moves) != 3 {
		t.Fatalf("%d moves", len(moves))
	}
	// Blocks placed in ascending original order into ascending slots of
	// the cylinder.
	for i := 1; i < len(moves); i++ {
		if moves[i].Orig < moves[i-1].Orig || moves[i].Dst < moves[i-1].Dst {
			t.Errorf("intra-cylinder order not preserved: %+v", moves)
		}
	}
}

func TestCylinderPolicyRespectsLimits(t *testing.T) {
	p := NewCylinderOrganPipe(spc)
	var hot []hotlist.BlockCount
	for i := int64(0); i < 10; i++ {
		hot = append(hot, hotlist.BlockCount{Block: blockIn(5, i), Count: 100 - i})
	}
	// Only 4 slots per reserved cylinder: the 10-block source cylinder
	// is truncated to what fits.
	moves := p.Place(hot, figure3Slots(), 100, geom.Block8K)
	if len(moves) != 4 {
		t.Errorf("%d moves, want 4 (cylinder capacity)", len(moves))
	}
	// maxBlocks cap.
	moves = p.Place(hot, figure3Slots(), 2, geom.Block8K)
	if len(moves) != 2 {
		t.Errorf("%d moves, want 2 (maxBlocks)", len(moves))
	}
}

func TestCylinderPolicyNoDuplicates(t *testing.T) {
	p := NewCylinderOrganPipe(spc)
	var hot []hotlist.BlockCount
	for i := int64(0); i < 30; i++ {
		hot = append(hot, hotlist.BlockCount{Block: blockIn(i%7, i/7), Count: 30 - i})
	}
	moves := p.Place(hot, figure3Slots(), 100, geom.Block8K)
	origs, dsts := map[int64]bool{}, map[int64]bool{}
	for _, m := range moves {
		if origs[m.Orig] || dsts[m.Dst] {
			t.Fatalf("duplicate in %+v", moves)
		}
		origs[m.Orig] = true
		dsts[m.Dst] = true
	}
}

func TestCylinderPolicyZeroSpc(t *testing.T) {
	p := CylinderOrganPipe{}
	if moves := p.Place(hotN(5, 4), figure3Slots(), 10, geom.Block8K); moves != nil {
		t.Errorf("zero cylinder size produced %d moves", len(moves))
	}
}
