// Package core implements the adaptive block rearrangement system — the
// primary contribution of "Adaptive Block Rearrangement" (Akyürek &
// Salem, ICDE 1993) as realized by the UNIX implementation report.
//
// It contains the two user-level processes of Section 4.2 and the glue
// that drives them against the modified driver:
//
//   - the reference stream analyzer, which periodically drains the
//     driver's request-monitoring table into a hot list;
//   - the block arranger, which selects the most frequently referenced
//     blocks and decides where to place them in the reserved region
//     using one of three placement policies (organ-pipe, interleaved,
//     serial); and
//   - the rearrangement controller, which runs the daily cycle: monitor
//     one day's requests, then clean the reserved region and install the
//     new hot blocks for the next day.
package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/hotlist"
)

// Move is one block-copy decision: copy the block at original physical
// address Orig to reserved-region address Dst.
type Move struct {
	Orig int64
	Dst  int64
}

// Policy decides where selected hot blocks go in the reserved region.
type Policy interface {
	// Name returns the policy name ("organ-pipe", "interleaved",
	// "serial").
	Name() string
	// Place maps hot blocks (ordered by descending reference count) to
	// reserved slots. slots holds the available block slots grouped per
	// reserved cylinder, cylinders already in organ-pipe fill order
	// (the order produced by driver.ReservedSlots). At most maxBlocks
	// blocks are placed, and never more than fit in slots.
	Place(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []Move
}

// NewPolicy returns a placement policy by name. The interleaved policy
// is created with the default stride.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "organ-pipe", "organpipe":
		return OrganPipe{}, nil
	case "interleaved":
		return NewInterleaved(DefaultStride), nil
	case "serial":
		return Serial{}, nil
	default:
		return nil, fmt.Errorf("core: unknown placement policy %q", name)
	}
}

// capBlocks bounds the hot list by the requested count and the available
// slot capacity, dropping malformed (unaligned or negative) addresses.
func capBlocks(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []hotlist.BlockCount {
	var capacity int
	for _, cyl := range slots {
		capacity += len(cyl)
	}
	if maxBlocks > capacity {
		maxBlocks = capacity
	}
	out := make([]hotlist.BlockCount, 0, maxBlocks)
	seen := make(map[int64]bool)
	align := int64(bs.Sectors())
	for _, bc := range hot {
		if len(out) == maxBlocks {
			break
		}
		if bc.Block < 0 || bc.Block%align != 0 || seen[bc.Block] {
			continue
		}
		seen[bc.Block] = true
		out = append(out, bc)
	}
	return out
}

// OrganPipe places the hottest blocks on the middle reserved cylinder,
// the next hottest on the adjacent cylinders, and so on, so the cylinder
// reference distribution across the reserved region forms an organ pipe
// (Section 2). The paper's headline results all use this policy.
type OrganPipe struct{}

// Name implements Policy.
func (OrganPipe) Name() string { return "organ-pipe" }

// Place implements Policy.
func (OrganPipe) Place(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []Move {
	hot = capBlocks(hot, slots, maxBlocks, bs)
	moves := make([]Move, 0, len(hot))
	i := 0
	for _, cyl := range slots {
		for _, dst := range cyl {
			if i == len(hot) {
				return moves
			}
			moves = append(moves, Move{Orig: hot[i].Block, Dst: dst})
			i++
		}
	}
	return moves
}

// DefaultStride is the default physical distance, in blocks, between
// successive blocks of a file under the file system's rotational
// interleaving: a one-block gap (Figure 3's assumption) means successive
// file blocks sit two block positions apart.
const DefaultStride = 2

// Interleaved attempts to preserve the file system's rotational
// interleaving inside the reserved region (Section 4.2). The driver has
// no knowledge of files, so it guesses: block Y is the successor of
// block X if Y's location is greater than X's by the interleaving
// stride and Y's reference frequency is "close" to X's — at least 50%
// (a figure the paper chose arbitrarily). Chains of successors are laid
// out with the same stride inside a reserved cylinder; when a chain
// breaks, the hottest remaining block starts a new one. Cylinders fill
// in the same organ-pipe order as the organ-pipe policy.
type Interleaved struct {
	// Stride is the block distance that defines a successor, and the
	// slot distance used when placing one.
	Stride int
	// CloseFrac is the minimum ratio of a successor's frequency to its
	// predecessor's; the paper uses 0.5.
	CloseFrac float64
}

// NewInterleaved returns an interleaved policy with the given stride and
// the paper's 50% closeness rule.
func NewInterleaved(stride int) Interleaved {
	if stride < 1 {
		stride = 1
	}
	return Interleaved{Stride: stride, CloseFrac: 0.5}
}

// Name implements Policy.
func (Interleaved) Name() string { return "interleaved" }

// Place implements Policy.
func (p Interleaved) Place(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []Move {
	hot = capBlocks(hot, slots, maxBlocks, bs)
	if len(hot) == 0 {
		return nil
	}
	// Index the unplaced hot blocks by address for successor lookups.
	freq := make(map[int64]int64, len(hot))
	placed := make(map[int64]bool, len(hot))
	for _, bc := range hot {
		freq[bc.Block] = bc.Count
	}
	strideSectors := int64(p.Stride * bs.Sectors())

	moves := make([]Move, 0, len(hot))
	next := 0 // index into hot of the next chain head candidate
	nextHead := func() (hotlist.BlockCount, bool) {
		for ; next < len(hot); next++ {
			if !placed[hot[next].Block] {
				bc := hot[next]
				next++
				return bc, true
			}
		}
		return hotlist.BlockCount{}, false
	}

	for _, cyl := range slots {
		occupied := make([]bool, len(cyl))
		free := len(cyl)
		firstFree := func() int {
			for i, o := range occupied {
				if !o {
					return i
				}
			}
			return -1
		}
		for free > 0 {
			head, ok := nextHead()
			if !ok {
				return moves
			}
			idx := firstFree()
			occupied[idx] = true
			free--
			placed[head.Block] = true
			moves = append(moves, Move{Orig: head.Block, Dst: cyl[idx]})
			// Follow the successor chain.
			cur := head
			for free > 0 {
				succBlock := cur.Block + strideSectors
				succCount, exists := freq[succBlock]
				if !exists || placed[succBlock] ||
					float64(succCount) < p.CloseFrac*float64(cur.Count) {
					break // no successor
				}
				slot := idx + p.Stride
				if slot >= len(cyl) || occupied[slot] {
					break // successor cannot be placed
				}
				occupied[slot] = true
				free--
				placed[succBlock] = true
				moves = append(moves, Move{Orig: succBlock, Dst: cyl[slot]})
				idx = slot
				cur = hotlist.BlockCount{Block: succBlock, Count: succCount}
			}
			// Chain ended; restart the head scan so skipped hot blocks
			// get first chance at the remaining slots.
			next = 0
		}
	}
	return moves
}

// CylinderOrganPipe is the cylinder-granularity baseline of
// [Vongsath 90], which the paper argues block granularity beats
// (Section 1.1): reference counts are aggregated per source cylinder,
// whole cylinders are ranked, and each reserved cylinder receives the
// blocks of one source cylinder with their intra-cylinder layout
// preserved. Same data volume as block rearrangement, coarser choice of
// what to move.
type CylinderOrganPipe struct {
	// SectorsPerCyl is the disk's cylinder size, used to group blocks by
	// source cylinder.
	SectorsPerCyl int
}

// NewCylinderOrganPipe returns the cylinder-granularity policy for a
// disk with the given cylinder size.
func NewCylinderOrganPipe(sectorsPerCyl int) CylinderOrganPipe {
	return CylinderOrganPipe{SectorsPerCyl: sectorsPerCyl}
}

// Name implements Policy.
func (CylinderOrganPipe) Name() string { return "cylinder" }

// Place implements Policy.
func (p CylinderOrganPipe) Place(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []Move {
	if p.SectorsPerCyl <= 0 {
		return nil
	}
	hot = capBlocks(hot, slots, len(hot), bs)
	// Aggregate reference counts per source cylinder.
	type cylInfo struct {
		count  int64
		blocks []hotlist.BlockCount
	}
	cyls := make(map[int64]*cylInfo)
	for _, bc := range hot {
		c := bc.Block / int64(p.SectorsPerCyl)
		ci := cyls[c]
		if ci == nil {
			ci = &cylInfo{}
			cyls[c] = ci
		}
		ci.count += bc.Count
		ci.blocks = append(ci.blocks, bc)
	}
	ranked := make([]int64, 0, len(cyls))
	for c := range cyls {
		ranked = append(ranked, c)
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := cyls[ranked[i]], cyls[ranked[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		return ranked[i] < ranked[j]
	})
	// Each reserved cylinder (already in organ-pipe fill order) receives
	// the observed blocks of one ranked source cylinder, in original
	// intra-cylinder order.
	var moves []Move
	ri := 0
	for _, cyl := range slots {
		if ri == len(ranked) || len(moves) >= maxBlocks {
			break
		}
		src := cyls[ranked[ri]]
		ri++
		blocks := src.blocks
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].Block < blocks[j].Block })
		for i, bc := range blocks {
			if i == len(cyl) || len(moves) >= maxBlocks {
				break
			}
			moves = append(moves, Move{Orig: bc.Block, Dst: cyl[i]})
		}
	}
	return moves
}

// Serial is the simplest policy: reference counts choose *which* blocks
// to rearrange, but the selected blocks are placed in ascending order of
// their original block numbers, ignoring frequency (Section 4.2). Its
// poorer measured performance (Tables 7–9) shows that placement matters.
type Serial struct{}

// Name implements Policy.
func (Serial) Name() string { return "serial" }

// Place implements Policy.
func (Serial) Place(hot []hotlist.BlockCount, slots [][]int64, maxBlocks int, bs geom.BlockSize) []Move {
	hot = capBlocks(hot, slots, maxBlocks, bs)
	origs := make([]int64, len(hot))
	for i, bc := range hot {
		origs[i] = bc.Block
	}
	sort.Slice(origs, func(i, j int) bool { return origs[i] < origs[j] })
	// Destination slots in ascending sector order, regardless of the
	// organ-pipe grouping.
	var dsts []int64
	for _, cyl := range slots {
		dsts = append(dsts, cyl...)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	moves := make([]Move, 0, len(origs))
	for i, orig := range origs {
		moves = append(moves, Move{Orig: orig, Dst: dsts[i]})
	}
	return moves
}
