package core

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/hotlist"
	"repro/internal/sim"
)

// DefaultPollPeriodMS is the analyzer's request-table polling period:
// two minutes, the period used in the paper's experiments (Section
// 4.1.4), short enough that recording was almost never suspended.
const DefaultPollPeriodMS = 2 * 60 * 1000

// Config carries rearranger tunables.
type Config struct {
	// Policy is the placement policy; nil selects organ-pipe.
	Policy Policy
	// Counter accumulates reference counts; nil selects an exact
	// counter (the paper's analyzer list was large enough that
	// replacement was rarely necessary).
	Counter hotlist.Counter
	// MaxBlocks caps how many blocks are rearranged per cycle; zero
	// means "as many as fit in the reserved region".
	MaxBlocks int
	// PollPeriodMS is the analyzer polling period; zero selects the
	// paper's two minutes.
	PollPeriodMS float64
	// CountWrites controls whether write references contribute to the
	// hot list. The paper's analyzer counts all references.
	CountWrites bool
	// CountReads controls whether read references contribute. Both
	// flags default to true via New.
	CountReads bool
}

// Rearranger is the adaptive block rearrangement controller: the
// user-level analyzer and arranger of Section 4.2 driving the modified
// driver's ioctls.
type Rearranger struct {
	eng *sim.Engine
	drv *driver.Driver
	cfg Config

	monitoring bool
	pollSeq    int // invalidates scheduled polls on stop
	missed     int64
}

// New returns a rearranger for the given driver.
func New(eng *sim.Engine, drv *driver.Driver, cfg Config) (*Rearranger, error) {
	if !drv.Rearranged() {
		return nil, fmt.Errorf("core: driver's disk has no reserved region")
	}
	if cfg.Policy == nil {
		cfg.Policy = OrganPipe{}
	}
	if cfg.Counter == nil {
		cfg.Counter = hotlist.NewExact()
	}
	if cfg.PollPeriodMS <= 0 {
		cfg.PollPeriodMS = DefaultPollPeriodMS
	}
	if !cfg.CountWrites && !cfg.CountReads {
		cfg.CountWrites, cfg.CountReads = true, true
	}
	if cfg.MaxBlocks <= 0 {
		var capacity int
		for _, cyl := range drv.ReservedSlots() {
			capacity += len(cyl)
		}
		cfg.MaxBlocks = capacity
	}
	return &Rearranger{eng: eng, drv: drv, cfg: cfg}, nil
}

// Policy returns the placement policy in use.
func (r *Rearranger) Policy() Policy { return r.cfg.Policy }

// Counter returns the reference counter in use, for inspection of the
// accumulated block-access distribution.
func (r *Rearranger) Counter() hotlist.Counter { return r.cfg.Counter }

// StartMonitoring begins periodic polling of the driver's request table,
// as the reference stream analyzer process does while the system runs.
func (r *Rearranger) StartMonitoring() {
	if r.monitoring {
		return
	}
	r.monitoring = true
	r.pollSeq++
	seq := r.pollSeq
	var tick func()
	tick = func() {
		if !r.monitoring || seq != r.pollSeq {
			return
		}
		r.Poll()
		r.eng.After(r.cfg.PollPeriodMS, tick)
	}
	r.eng.After(r.cfg.PollPeriodMS, tick)
}

// StopMonitoring stops the periodic polling and performs a final drain
// so no recorded requests are lost.
func (r *Rearranger) StopMonitoring() {
	if !r.monitoring {
		return
	}
	r.monitoring = false
	r.pollSeq++
	r.Poll()
}

// Poll drains the driver's request table into the reference counter —
// one analyzer wake-up.
func (r *Rearranger) Poll() {
	recs, missed := r.drv.ReadRequestTable()
	r.missed += missed
	for _, rec := range recs {
		if rec.Write && !r.cfg.CountWrites {
			continue
		}
		if !rec.Write && !r.cfg.CountReads {
			continue
		}
		r.cfg.Counter.Observe(rec.Sector)
	}
}

// Missed returns how many requests were lost to a full request table —
// near zero when the polling period is adequate.
func (r *Rearranger) Missed() int64 { return r.missed }

// HotList returns the current top blocks by estimated reference count.
func (r *Rearranger) HotList() []hotlist.BlockCount {
	return r.cfg.Counter.Top(r.cfg.MaxBlocks)
}

// ResetCounts clears the reference counter, starting a new measurement
// window (the paper rebuilds its hot list from each day's references).
func (r *Rearranger) ResetCounts() { r.cfg.Counter.Reset() }

// Rearrange runs one rearrangement cycle: it cleans the reserved region
// (returning any dirty blocks to their original locations), computes the
// placement of the current hot list, and copies the selected blocks into
// the reserved region. done receives the number of blocks installed.
// The copies go through the ordinary device queue and interleave with
// other traffic, exactly as the ioctl-driven arranger does.
func (r *Rearranger) Rearrange(done func(moves int, err error)) {
	hot := r.HotList()
	r.drv.Clean(func(err error) {
		if err != nil {
			finish(done, 0, fmt.Errorf("core: cleaning reserved region: %w", err))
			return
		}
		moves := r.cfg.Policy.Place(hot, r.drv.ReservedSlots(), r.cfg.MaxBlocks, r.drv.BlockSize())
		r.copyNext(moves, 0, done)
	})
}

// RearrangeIncremental runs one rearrangement cycle like Rearrange, but
// computes the difference against the blocks already in the reserved
// region and only moves what changed: blocks that keep their reserved
// slot stay put, stale blocks are cleaned out individually, and only new
// or relocated blocks are copied. Because access patterns change slowly,
// the daily difference is small, so the cycle costs a fraction of the
// I/O of a full Clean+copy — the incremental-rearrangement benefit the
// paper credits block granularity with (Section 1.1). done receives the
// number of blocks copied in (kept blocks are not counted).
func (r *Rearranger) RearrangeIncremental(done func(moved int, err error)) {
	hot := r.HotList()
	moves := r.cfg.Policy.Place(hot, r.drv.ReservedSlots(), r.cfg.MaxBlocks, r.drv.BlockSize())
	desired := make(map[int64]int64, len(moves)) // orig -> dst
	for _, m := range moves {
		desired[m.Orig] = m.Dst
	}
	// Split the work: stale entries to clean, changed/new blocks to copy.
	var toClean []int64
	for _, e := range r.drv.BlockTable() {
		if dst, ok := desired[e.Orig]; ok && dst == e.New {
			delete(desired, e.Orig) // already in place
			continue
		}
		toClean = append(toClean, e.Orig)
	}
	var toCopy []Move
	for _, m := range moves {
		if _, ok := desired[m.Orig]; ok {
			toCopy = append(toCopy, m)
		}
	}
	var cleanNext func(i int)
	cleanNext = func(i int) {
		if i == len(toClean) {
			r.copyNext(toCopy, 0, done)
			return
		}
		r.drv.BClean(toClean[i], func(err error) {
			if err != nil {
				finish(done, 0, fmt.Errorf("core: incremental clean of block %d: %w", toClean[i], err))
				return
			}
			cleanNext(i + 1)
		})
	}
	cleanNext(0)
}

// CleanOnly empties the reserved region without installing new blocks —
// used on the "off" days of the paper's alternating experiments.
func (r *Rearranger) CleanOnly(done func(err error)) {
	r.drv.Clean(func(err error) {
		if done != nil {
			done(err)
		}
	})
}

func (r *Rearranger) copyNext(moves []Move, i int, done func(int, error)) {
	if i >= len(moves) {
		finish(done, len(moves), nil)
		return
	}
	r.drv.BCopy(moves[i].Orig, moves[i].Dst, func(err error) {
		if err != nil {
			finish(done, i, fmt.Errorf("core: copying block %d: %w", moves[i].Orig, err))
			return
		}
		r.copyNext(moves, i+1, done)
	})
}

func finish(done func(int, error), n int, err error) {
	if done != nil {
		done(n, err)
	}
}
