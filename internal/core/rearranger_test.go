package core

import (
	"testing"

	"repro/internal/hotlist"
	"repro/internal/rig"
	"repro/internal/sim"
)

func newRig(t *testing.T) *rig.Rig {
	t.Helper()
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRequiresRearrangedDisk(t *testing.T) {
	r, err := rig.New(rig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(r.Eng, r.Driver, Config{}); err == nil {
		t.Fatal("rearranger accepted a non-rearranged disk")
	}
}

func TestPollAccumulatesCounts(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		r.Driver.ReadBlock(0, 42, nil)
	}
	r.Driver.ReadBlock(0, 99, nil)
	r.Eng.Run()
	ra.Poll()
	hot := ra.HotList()
	if len(hot) < 2 {
		t.Fatalf("hot list has %d entries", len(hot))
	}
	if hot[0].Count != 7 {
		t.Errorf("hottest count = %d, want 7", hot[0].Count)
	}
}

func TestMonitoringPollsPeriodically(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{PollPeriodMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ra.StartMonitoring()
	// Issue requests over 5 simulated seconds.
	for i := 0; i < 5; i++ {
		i := i
		r.Eng.At(float64(i)*1000+10, func() {
			r.Driver.ReadBlock(0, int64(i), nil)
		})
	}
	r.Eng.RunUntil(5500)
	ra.StopMonitoring()
	if got := ra.HotList(); len(got) != 5 {
		t.Errorf("hot list has %d entries after periodic polling, want 5", len(got))
	}
	if ra.Missed() != 0 {
		t.Errorf("missed = %d", ra.Missed())
	}
}

func TestStopMonitoringStopsPolling(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{PollPeriodMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ra.StartMonitoring()
	r.Eng.RunUntil(2500)
	ra.StopMonitoring()
	// Traffic after stop is not observed until the next explicit poll.
	r.Driver.ReadBlock(0, 7, nil)
	r.Eng.RunUntil(10000)
	if got := len(ra.HotList()); got != 0 {
		t.Errorf("hot list has %d entries after stop", got)
	}
}

func TestReadWriteFiltering(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{CountReads: true, CountWrites: false})
	if err != nil {
		t.Fatal(err)
	}
	blockData := make([]byte, r.Driver.BlockSize().Bytes())
	r.Driver.ReadBlock(0, 1, nil)
	r.Driver.WriteBlock(0, 2, blockData, nil)
	r.Eng.Run()
	ra.Poll()
	if got := len(ra.HotList()); got != 1 {
		t.Errorf("hot list has %d entries, want 1 (reads only)", got)
	}
}

func TestRearrangeInstallsHotBlocks(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Skewed traffic: 50 hot blocks referenced many times.
	for rep := 0; rep < 5; rep++ {
		for b := int64(0); b < 50; b++ {
			r.Driver.ReadBlock(0, b*37, nil)
		}
	}
	r.Eng.Run()
	ra.Poll()
	var installed int
	var rerr error
	ra.Rearrange(func(n int, err error) { installed, rerr = n, err })
	r.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if installed != 50 {
		t.Errorf("installed %d blocks, want 50", installed)
	}
	if r.Driver.BlockTableLen() != 50 {
		t.Errorf("block table has %d entries", r.Driver.BlockTableLen())
	}
}

func TestRearrangeReplacesPreviousSet(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 10; b++ {
		r.Driver.ReadBlock(0, b, nil)
	}
	r.Eng.Run()
	ra.Poll()
	ra.Rearrange(nil)
	r.Eng.Run()
	if r.Driver.BlockTableLen() != 10 {
		t.Fatalf("first cycle installed %d", r.Driver.BlockTableLen())
	}

	// New day, different hot set.
	ra.ResetCounts()
	for b := int64(100); b < 105; b++ {
		for i := 0; i < 3; i++ {
			r.Driver.ReadBlock(0, b, nil)
		}
	}
	r.Eng.Run()
	ra.Poll()
	var installed int
	ra.Rearrange(func(n int, err error) { installed = n })
	r.Eng.Run()
	if installed != 5 {
		t.Errorf("second cycle installed %d, want 5", installed)
	}
	if r.Driver.BlockTableLen() != 5 {
		t.Errorf("table has %d entries after second cycle", r.Driver.BlockTableLen())
	}
}

func TestCleanOnly(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 5; b++ {
		r.Driver.ReadBlock(0, b, nil)
	}
	r.Eng.Run()
	ra.Poll()
	ra.Rearrange(nil)
	r.Eng.Run()
	var cerr error
	ra.CleanOnly(func(err error) { cerr = err })
	r.Eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if r.Driver.BlockTableLen() != 0 {
		t.Errorf("table has %d entries after CleanOnly", r.Driver.BlockTableLen())
	}
}

func TestRearrangementReducesSeekDistance(t *testing.T) {
	// The headline effect, end to end: with a skewed workload, a
	// rearranged day has a much lower mean scheduled seek distance than
	// an unrearranged one.
	run := func(rearrange bool) float64 {
		r := newRig(t)
		ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 200})
		if err != nil {
			t.Fatal(err)
		}
		rnd := sim.NewRand(99)
		z := sim.NewZipf(200, 1.5)
		nblocks := r.PartitionBlocks(0)
		// Hot blocks scattered across the whole disk.
		hotBlocks := make([]int64, 200)
		for i := range hotBlocks {
			hotBlocks[i] = rnd.Int63n(nblocks)
		}
		day := func() {
			base := r.Eng.Now()
			for i := 0; i < 3000; i++ {
				blk := hotBlocks[z.Rank(rnd)]
				at := base + float64(i)*40
				r.Eng.At(at, func() { r.Driver.ReadBlock(0, blk, nil) })
			}
			r.Eng.Run()
		}
		day() // day 1: monitor
		ra.Poll()
		if rearrange {
			ra.Rearrange(nil)
			r.Eng.Run()
		}
		r.Driver.ReadStats() // discard day-1 stats
		day()                // day 2: measure
		return r.Driver.ReadStats().All().SchedDist.MeanDist()
	}
	off := run(false)
	on := run(true)
	if on >= off/3 {
		t.Errorf("rearranged mean seek dist %.1f, unrearranged %.1f: expected a large reduction", on, off)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Policy().Name() != "organ-pipe" {
		t.Errorf("default policy = %q", ra.Policy().Name())
	}
	if ra.cfg.PollPeriodMS != DefaultPollPeriodMS {
		t.Errorf("default poll period = %v", ra.cfg.PollPeriodMS)
	}
	if !ra.cfg.CountReads || !ra.cfg.CountWrites {
		t.Error("defaults should count both reads and writes")
	}
	if ra.cfg.MaxBlocks <= 900 {
		t.Errorf("default MaxBlocks = %d, want reserved capacity (~1000)", ra.cfg.MaxBlocks)
	}
}

func TestBoundedCounterIntegration(t *testing.T) {
	r := newRig(t)
	counter := hotlist.NewBounded(64, hotlist.ReplaceMin)
	ra, err := New(r.Eng, r.Driver, Config{Counter: counter, MaxBlocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	rnd := sim.NewRand(5)
	z := sim.NewZipf(1000, 1.4)
	for i := 0; i < 2000; i++ {
		r.Driver.ReadBlock(0, int64(z.Rank(rnd)), nil)
	}
	r.Eng.Run()
	ra.Poll()
	var installed int
	ra.Rearrange(func(n int, err error) { installed = n })
	r.Eng.Run()
	if installed != 10 {
		t.Errorf("installed %d with bounded counter", installed)
	}
}

func TestBCleanSingleBlock(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 3; b++ {
		r.Driver.ReadBlock(0, b*100, nil)
	}
	r.Eng.Run()
	ra.Poll()
	ra.Rearrange(nil)
	r.Eng.Run()
	if r.Driver.BlockTableLen() != 3 {
		t.Fatalf("table has %d entries", r.Driver.BlockTableLen())
	}
	entries := r.Driver.BlockTable()
	var cerr error
	r.Driver.BClean(entries[0].Orig, func(err error) { cerr = err })
	r.Eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if r.Driver.BlockTableLen() != 2 {
		t.Errorf("table has %d entries after BClean", r.Driver.BlockTableLen())
	}
	// BClean of an unrearranged block is a harmless no-op.
	r.Driver.BClean(999888*16, func(err error) { cerr = err })
	r.Eng.Run()
	if cerr != nil || r.Driver.BlockTableLen() != 2 {
		t.Errorf("no-op BClean: err=%v len=%d", cerr, r.Driver.BlockTableLen())
	}
}

func TestRearrangeIncrementalMovesOnlyTheDifference(t *testing.T) {
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Day 1: blocks 0..9 hot, with decreasing counts.
	for b := int64(0); b < 10; b++ {
		for i := int64(0); i < 20-b; i++ {
			r.Driver.ReadBlock(0, b*50, nil)
		}
	}
	r.Eng.Run()
	ra.Poll()
	ra.Rearrange(nil)
	r.Eng.Run()
	if r.Driver.BlockTableLen() != 10 {
		t.Fatalf("first cycle: %d entries", r.Driver.BlockTableLen())
	}

	// Day 2: identical pattern -> the incremental cycle should move
	// nothing at all.
	ra.ResetCounts()
	for b := int64(0); b < 10; b++ {
		for i := int64(0); i < 20-b; i++ {
			r.Driver.ReadBlock(0, b*50, nil)
		}
	}
	r.Eng.Run()
	ra.Poll()
	var moved int
	var rerr error
	ra.RearrangeIncremental(func(n int, err error) { moved, rerr = n, err })
	r.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if moved != 0 {
		t.Errorf("identical hot set: incremental moved %d blocks, want 0", moved)
	}
	if r.Driver.BlockTableLen() != 10 {
		t.Errorf("table has %d entries", r.Driver.BlockTableLen())
	}

	// Day 3: one new block displaces the coldest; only the difference
	// moves (the new block in, the stale one out, plus any blocks whose
	// organ-pipe rank slot shifted).
	ra.ResetCounts()
	for b := int64(0); b < 9; b++ {
		for i := int64(0); i < 20-b; i++ {
			r.Driver.ReadBlock(0, b*50, nil)
		}
	}
	for i := 0; i < 25; i++ {
		r.Driver.ReadBlock(0, 7777, nil) // new hottest block
	}
	r.Eng.Run()
	ra.Poll()
	ra.RearrangeIncremental(func(n int, err error) { moved, rerr = n, err })
	r.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if moved == 0 || moved > 10 {
		t.Errorf("incremental moved %d blocks", moved)
	}
	if r.Driver.BlockTableLen() != 10 {
		t.Errorf("table has %d entries after day 3", r.Driver.BlockTableLen())
	}
}

func TestRearrangeIncrementalFromEmpty(t *testing.T) {
	// With an empty reserved region, incremental equals a full cycle.
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 5; b++ {
		r.Driver.ReadBlock(0, b*37, nil)
	}
	r.Eng.Run()
	ra.Poll()
	var moved int
	ra.RearrangeIncremental(func(n int, err error) { moved = n })
	r.Eng.Run()
	if moved != 5 || r.Driver.BlockTableLen() != 5 {
		t.Errorf("moved=%d len=%d", moved, r.Driver.BlockTableLen())
	}
}

func TestRearrangeIncrementalPreservesData(t *testing.T) {
	// A dirty kept block must keep its updated contents across the
	// incremental cycle; a dirty evicted block must be restored.
	r := newRig(t)
	ra, err := New(r.Eng, r.Driver, Config{MaxBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	blockData := func(b byte) []byte {
		d := make([]byte, r.Driver.BlockSize().Bytes())
		for i := range d {
			d[i] = b
		}
		return d
	}
	r.Driver.WriteBlock(0, 10, blockData(0xAA), nil)
	r.Driver.WriteBlock(0, 20, blockData(0xBB), nil)
	r.Eng.Run()
	// Hot: 10 (hotter) and 20.
	for i := 0; i < 5; i++ {
		r.Driver.ReadBlock(0, 10, nil)
	}
	r.Driver.ReadBlock(0, 20, nil)
	r.Eng.Run()
	ra.Poll()
	ra.Rearrange(nil)
	r.Eng.Run()

	// Update both (they are rearranged, so the copies go dirty).
	r.Driver.WriteBlock(0, 10, blockData(0xA1), nil)
	r.Driver.WriteBlock(0, 20, blockData(0xB1), nil)
	r.Eng.Run()

	// Next day: 10 still hot, 20 cold, 30 newly hot.
	ra.ResetCounts()
	for i := 0; i < 5; i++ {
		r.Driver.ReadBlock(0, 10, nil)
	}
	r.Driver.ReadBlock(0, 30, nil)
	r.Driver.ReadBlock(0, 30, nil)
	r.Eng.Run()
	ra.Poll()
	ra.RearrangeIncremental(nil)
	r.Eng.Run()

	var got10, got20 []byte
	r.Driver.ReadBlock(0, 10, func(d []byte, err error) { got10 = d })
	r.Driver.ReadBlock(0, 20, func(d []byte, err error) { got20 = d })
	r.Eng.Run()
	if got10[0] != 0xA1 {
		t.Errorf("kept block lost its update: %x", got10[0])
	}
	if got20[0] != 0xB1 {
		t.Errorf("evicted dirty block lost its update: %x", got20[0])
	}
}
