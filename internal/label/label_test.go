package label

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func toshibaGeom() geom.Geometry {
	return geom.Geometry{Cylinders: 815, TracksPerCyl: 10, SectorsPerTrack: 34, RPM: 3600}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l, err := NewRearranged("sakarya0", toshibaGeom(), 48)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddPartition(0, 100000, TagFS); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddPartition(100000, 50000, TagRaw); err != nil {
		t.Fatal(err)
	}
	buf, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != geom.SectorSize {
		t.Fatalf("label image = %d bytes", len(buf))
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sakarya0" {
		t.Errorf("Name = %q", got.Name)
	}
	if got.Geom != l.Geom {
		t.Errorf("Geom = %+v, want %+v", got.Geom, l.Geom)
	}
	if !got.Rearranged || got.ReservedStart != l.ReservedStart || got.ReservedLen != l.ReservedLen {
		t.Errorf("reserved info = (%v, %d, %d)", got.Rearranged, got.ReservedStart, got.ReservedLen)
	}
	if len(got.Parts) != 2 || got.Parts[0] != l.Parts[0] || got.Parts[1] != l.Parts[1] {
		t.Errorf("Parts = %+v", got.Parts)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	l := New("d", toshibaGeom())
	buf, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: err = %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[offName] ^= 0x01 // flip a name bit: checksum must catch it
	if _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt body: err = %v", err)
	}
	if _, err := Decode(buf[:100]); err == nil {
		t.Error("short image accepted")
	}
}

func TestDecodeChecksumCatchesAnyByteFlip(t *testing.T) {
	l, err := NewRearranged("x", toshibaGeom(), 48)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, bit uint8) bool {
		p := int(pos) % geom.SectorSize
		b := append([]byte(nil), buf...)
		b[p] ^= 1 << (bit % 8)
		_, err := Decode(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewRearrangedCentersReservedRegion(t *testing.T) {
	g := toshibaGeom()
	l, err := NewRearranged("d", g, 48)
	if err != nil {
		t.Fatal(err)
	}
	first, count := l.ReservedCyls()
	if count != 48 {
		t.Errorf("reserved cylinders = %d", count)
	}
	// Centered: (815-48)/2 = 383.
	if first != 383 {
		t.Errorf("first reserved cylinder = %d, want 383", first)
	}
	if l.VirtualGeom().Cylinders != 815-48 {
		t.Errorf("virtual cylinders = %d", l.VirtualGeom().Cylinders)
	}
	if l.VirtualSectors() != g.TotalSectors()-l.ReservedLen {
		t.Errorf("virtual sectors = %d", l.VirtualSectors())
	}
}

func TestNewRearrangedRejectsBadCounts(t *testing.T) {
	if _, err := NewRearranged("d", toshibaGeom(), 0); err == nil {
		t.Error("0 reserved cylinders accepted")
	}
	if _, err := NewRearranged("d", toshibaGeom(), 815); err == nil {
		t.Error("all cylinders reserved accepted")
	}
}

func TestMapVirtual(t *testing.T) {
	g := toshibaGeom()
	l, err := NewRearranged("d", g, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Below the reserved region: identity.
	if got := l.MapVirtual(0); got != 0 {
		t.Errorf("MapVirtual(0) = %d", got)
	}
	if got := l.MapVirtual(l.ReservedStart - 1); got != l.ReservedStart-1 {
		t.Errorf("just below reserved: %d", got)
	}
	// At and above: shifted past the hidden cylinders.
	if got := l.MapVirtual(l.ReservedStart); got != l.ReservedStart+l.ReservedLen {
		t.Errorf("at reserved start: %d, want %d", got, l.ReservedStart+l.ReservedLen)
	}
	last := l.VirtualSectors() - 1
	if got := l.MapVirtual(last); got != g.TotalSectors()-1 {
		t.Errorf("last virtual sector maps to %d, want %d", got, g.TotalSectors()-1)
	}
}

func TestMapVirtualNeverHitsReserved(t *testing.T) {
	l, err := NewRearranged("d", toshibaGeom(), 48)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		v := int64(raw) % l.VirtualSectors()
		p := l.MapVirtual(v)
		return !l.InReserved(p) && p >= 0 && p < l.Geom.TotalSectors()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapVirtualInjective(t *testing.T) {
	l, err := NewRearranged("d", toshibaGeom(), 48)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		va := int64(a) % l.VirtualSectors()
		vb := int64(b) % l.VirtualSectors()
		if va == vb {
			return true
		}
		return l.MapVirtual(va) != l.MapVirtual(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlainLabelMapIdentity(t *testing.T) {
	l := New("d", toshibaGeom())
	if got := l.MapVirtual(12345); got != 12345 {
		t.Errorf("plain disk MapVirtual(12345) = %d", got)
	}
	if l.InReserved(12345) {
		t.Error("plain disk claims reserved sectors")
	}
	if first, count := l.ReservedCyls(); first != 0 || count != 0 {
		t.Errorf("plain disk ReservedCyls = (%d, %d)", first, count)
	}
}

func TestAddPartitionValidation(t *testing.T) {
	l := New("d", toshibaGeom())
	if _, err := l.AddPartition(0, 1000, TagFS); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddPartition(500, 1000, TagFS); err == nil {
		t.Error("overlapping partition accepted")
	}
	if _, err := l.AddPartition(-1, 10, TagFS); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := l.AddPartition(0, 0, TagFS); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := l.AddPartition(l.VirtualSectors(), 10, TagFS); err == nil {
		t.Error("partition beyond virtual disk accepted")
	}
	for i := 1; i < MaxPartitions; i++ {
		if _, err := l.AddPartition(int64(1000+i*10), 10, TagRaw); err != nil {
			t.Fatalf("partition %d rejected: %v", i, err)
		}
	}
	if _, err := l.AddPartition(5000, 10, TagRaw); err == nil {
		t.Error("ninth partition accepted")
	}
}

func TestPartitionLookup(t *testing.T) {
	l := New("d", toshibaGeom())
	idx, err := l.AddPartition(16, 1600, TagFS)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Partition(idx)
	if err != nil || p.Start != 16 || p.Size != 1600 {
		t.Errorf("Partition(%d) = %+v, %v", idx, p, err)
	}
	if _, err := l.Partition(5); err == nil {
		t.Error("missing partition returned without error")
	}
	if _, err := l.Partition(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestEncodeRejectsLongName(t *testing.T) {
	l := New("this-name-is-way-too-long-for-a-label", toshibaGeom())
	if _, err := l.Encode(); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestVirtualSizeMatchesPaperSetup(t *testing.T) {
	// Section 5: hiding 48 of 815 cylinders is ~6% of the Toshiba's
	// capacity; 80 of 1658 is ~5% of the Fujitsu's.
	tosh, err := NewRearranged("t", toshibaGeom(), 48)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(tosh.ReservedLen) / float64(tosh.Geom.TotalSectors())
	if frac < 0.055 || frac > 0.065 {
		t.Errorf("Toshiba reserved fraction = %.3f, want ~0.06", frac)
	}
	fuji, err := NewRearranged("f", geom.Geometry{
		Cylinders: 1658, TracksPerCyl: 15, SectorsPerTrack: 85, RPM: 3600}, 80)
	if err != nil {
		t.Fatal(err)
	}
	frac = float64(fuji.ReservedLen) / float64(fuji.Geom.TotalSectors())
	if frac < 0.045 || frac > 0.055 {
		t.Errorf("Fujitsu reserved fraction = %.3f, want ~0.05", frac)
	}
}
