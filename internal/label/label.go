// Package label implements a UNIX-style disk label, extended as in
// Section 4.1.1 of "Adaptive Block Rearrangement Under UNIX".
//
// A disk label records the drive geometry and the partition table; the
// newfs utility reads it to initialize file systems. To make space for
// rearranged blocks, the target disk is made to look smaller than it
// really is: a group of cylinders in the middle of the disk is hidden
// from the virtual geometry and becomes the reserved region. The label
// additionally records a "rearranged" magic value and the start and
// length of the reserved region so the driver's attach routine can
// discover them at boot.
//
// The label is stored in sector 0, in a fixed 512-byte big-endian layout
// protected by a Sun-style XOR checksum.
package label

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Magic identifies a valid disk label ("DLBL").
const Magic uint32 = 0x444C424C

// RearrangedMagic marks a disk initialized for block rearrangement
// ("REAR"). It is stored in the label's rearranged field.
const RearrangedMagic uint32 = 0x52454152

// LabelSector is the sector that holds the disk label.
const LabelSector = 0

// MaxPartitions is the size of the partition table (SunOS labels have
// eight slots, a–h).
const MaxPartitions = 8

// Version is the current label format version.
const Version uint16 = 1

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("label: bad magic")
	ErrBadChecksum = errors.New("label: bad checksum")
	ErrBadVersion  = errors.New("label: unsupported version")
)

// PartTag classifies the contents of a partition.
type PartTag uint16

// Partition tags.
const (
	TagUnused PartTag = iota
	TagFS             // holds a file system
	TagRaw            // raw space (swap, etc.)
)

// Partition is one entry of the partition table. Start and Size are in
// sectors of the *virtual* disk (the geometry visible to file systems).
type Partition struct {
	Start int64
	Size  int64
	Tag   PartTag
}

// Label is the decoded form of a disk label.
type Label struct {
	// Name is a human-readable disk name (at most 24 bytes).
	Name string
	// Geom is the true physical geometry of the drive.
	Geom geom.Geometry
	// Parts is the partition table, addressed in virtual sectors.
	Parts []Partition

	// Rearranged marks a disk initialized for block rearrangement.
	Rearranged bool
	// ReservedStart is the first physical sector of the reserved region.
	ReservedStart int64
	// ReservedLen is the length of the reserved region in sectors.
	ReservedLen int64
}

// New returns a plain (non-rearranged) label for the given geometry with
// an empty partition table.
func New(name string, g geom.Geometry) *Label {
	return &Label{Name: name, Geom: g}
}

// NewRearranged returns a label for a disk initialized for block
// rearrangement with reservedCyls cylinders hidden from the middle of
// the disk, as the paper's initialization utility does.
func NewRearranged(name string, g geom.Geometry, reservedCyls int) (*Label, error) {
	return NewRearrangedAt(name, g, (g.Cylinders-reservedCyls)/2, reservedCyls)
}

// AlignedFirstCyl returns the largest first cylinder <= preferred at
// which a reserved region's start sector is aligned to blockSectors, or
// an error if none exists. Alignment matters because the virtual-disk
// mapping (Figure 2) is discontinuous at the reserved region's start: if
// that boundary fell inside a file system block, the block's physical
// extent would straddle the reserved region — overlapping the on-disk
// block table.
func AlignedFirstCyl(g geom.Geometry, blockSectors, preferred int) (int, error) {
	if blockSectors <= 0 {
		return 0, fmt.Errorf("label: invalid block size %d sectors", blockSectors)
	}
	spc := int64(g.SectorsPerCyl())
	// Cylinder 0 is excluded: it holds the disk label.
	for c := preferred; c >= 1; c-- {
		if int64(c)*spc%int64(blockSectors) == 0 {
			return c, nil
		}
	}
	return 0, fmt.Errorf("label: no block-aligned reserved start in cylinders [1, %d]", preferred)
}

// CheckBlockAligned verifies that the reserved region's start and length
// are multiples of the file system block size, so no block's physical
// extent can straddle the region boundary. The driver refuses to attach
// otherwise.
func (l *Label) CheckBlockAligned(blockSectors int) error {
	if !l.Rearranged {
		return nil
	}
	if blockSectors <= 0 {
		return fmt.Errorf("label: invalid block size %d sectors", blockSectors)
	}
	if l.ReservedStart%int64(blockSectors) != 0 {
		return fmt.Errorf("label: reserved region start %d not aligned to %d-sector blocks (a file system block would straddle it)",
			l.ReservedStart, blockSectors)
	}
	if l.ReservedLen%int64(blockSectors) != 0 {
		return fmt.Errorf("label: reserved region length %d not aligned to %d-sector blocks",
			l.ReservedLen, blockSectors)
	}
	return nil
}

// NewRearrangedAt places the reserved region at an explicit first
// cylinder instead of the center. The organ-pipe argument for a central
// region assumes the head gravitates to the middle; the reserved-region
// location ablation uses this to test that assumption.
func NewRearrangedAt(name string, g geom.Geometry, firstCyl, reservedCyls int) (*Label, error) {
	if reservedCyls <= 0 || reservedCyls >= g.Cylinders {
		return nil, fmt.Errorf("label: %d reserved cylinders invalid for a %d-cylinder disk",
			reservedCyls, g.Cylinders)
	}
	if firstCyl < 0 || firstCyl+reservedCyls > g.Cylinders {
		return nil, fmt.Errorf("label: reserved cylinders [%d, %d) outside a %d-cylinder disk",
			firstCyl, firstCyl+reservedCyls, g.Cylinders)
	}
	l := New(name, g)
	l.Rearranged = true
	l.ReservedStart = g.FirstSectorOfCyl(firstCyl)
	l.ReservedLen = int64(reservedCyls) * int64(g.SectorsPerCyl())
	return l, nil
}

// VirtualSectors returns the number of sectors of the virtual disk: the
// physical size minus the hidden reserved region.
func (l *Label) VirtualSectors() int64 {
	n := l.Geom.TotalSectors()
	if l.Rearranged {
		n -= l.ReservedLen
	}
	return n
}

// VirtualGeom returns the geometry presented to the file system: the
// true geometry with the reserved cylinders removed.
func (l *Label) VirtualGeom() geom.Geometry {
	if !l.Rearranged {
		return l.Geom
	}
	return l.Geom.Shrink(int(l.ReservedLen / int64(l.Geom.SectorsPerCyl())))
}

// ReservedCyls returns the first cylinder and the cylinder count of the
// reserved region. It returns (0, 0) for a non-rearranged disk.
func (l *Label) ReservedCyls() (first, count int) {
	if !l.Rearranged {
		return 0, 0
	}
	spc := int64(l.Geom.SectorsPerCyl())
	return int(l.ReservedStart / spc), int(l.ReservedLen / spc)
}

// MapVirtual maps a virtual sector number to a physical sector number:
// sectors below the reserved region map identically, sectors above it
// shift past the hidden cylinders (Figure 2 of the paper).
func (l *Label) MapVirtual(vsector int64) int64 {
	if !l.Rearranged || vsector < l.ReservedStart {
		return vsector
	}
	return vsector + l.ReservedLen
}

// InReserved reports whether physical sector p lies inside the reserved
// region.
func (l *Label) InReserved(p int64) bool {
	return l.Rearranged && p >= l.ReservedStart && p < l.ReservedStart+l.ReservedLen
}

// AddPartition appends a partition covering [start, start+size) virtual
// sectors. It validates bounds and overlap against existing partitions.
func (l *Label) AddPartition(start, size int64, tag PartTag) (int, error) {
	if len(l.Parts) >= MaxPartitions {
		return 0, fmt.Errorf("label: partition table full (%d entries)", MaxPartitions)
	}
	if start < 0 || size <= 0 || start+size > l.VirtualSectors() {
		return 0, fmt.Errorf("label: partition [%d, %d) outside virtual disk of %d sectors",
			start, start+size, l.VirtualSectors())
	}
	for i, p := range l.Parts {
		if p.Tag == TagUnused {
			continue
		}
		if start < p.Start+p.Size && start+size > p.Start {
			return 0, fmt.Errorf("label: partition [%d, %d) overlaps partition %d [%d, %d)",
				start, start+size, i, p.Start, p.Start+p.Size)
		}
	}
	l.Parts = append(l.Parts, Partition{Start: start, Size: size, Tag: tag})
	return len(l.Parts) - 1, nil
}

// Partition returns the partition with the given index.
func (l *Label) Partition(i int) (Partition, error) {
	if i < 0 || i >= len(l.Parts) {
		return Partition{}, fmt.Errorf("label: no partition %d (table has %d)", i, len(l.Parts))
	}
	return l.Parts[i], nil
}

// Binary layout offsets within the 512-byte label sector.
const (
	offMagic      = 0  // uint32
	offVersion    = 4  // uint16
	offName       = 8  // 24 bytes, NUL padded
	offCylinders  = 32 // uint32
	offTracks     = 36 // uint16
	offSectors    = 38 // uint16
	offRPM        = 40 // uint16
	offRearranged = 44 // uint32 (RearrangedMagic or 0)
	offResStart   = 48 // uint64
	offResLen     = 56 // uint64
	offNPart      = 64 // uint16
	offParts      = 66 // MaxPartitions × 18 bytes (start u64, size u64, tag u16)
	partEntrySize = 18
	offChecksum   = 510 // uint16, XOR of all 16-bit words == 0
	labelSize     = geom.SectorSize
	nameSize      = 24
)

// Encode serializes the label into a 512-byte sector image.
func (l *Label) Encode() ([]byte, error) {
	if err := l.Geom.Validate(); err != nil {
		return nil, err
	}
	if len(l.Name) > nameSize {
		return nil, fmt.Errorf("label: name %q longer than %d bytes", l.Name, nameSize)
	}
	if len(l.Parts) > MaxPartitions {
		return nil, fmt.Errorf("label: %d partitions exceed table size %d", len(l.Parts), MaxPartitions)
	}
	buf := make([]byte, labelSize)
	be := binary.BigEndian
	be.PutUint32(buf[offMagic:], Magic)
	be.PutUint16(buf[offVersion:], Version)
	copy(buf[offName:offName+nameSize], l.Name)
	be.PutUint32(buf[offCylinders:], uint32(l.Geom.Cylinders))
	be.PutUint16(buf[offTracks:], uint16(l.Geom.TracksPerCyl))
	be.PutUint16(buf[offSectors:], uint16(l.Geom.SectorsPerTrack))
	be.PutUint16(buf[offRPM:], uint16(l.Geom.RPM))
	if l.Rearranged {
		be.PutUint32(buf[offRearranged:], RearrangedMagic)
		be.PutUint64(buf[offResStart:], uint64(l.ReservedStart))
		be.PutUint64(buf[offResLen:], uint64(l.ReservedLen))
	}
	be.PutUint16(buf[offNPart:], uint16(len(l.Parts)))
	for i, p := range l.Parts {
		o := offParts + i*partEntrySize
		be.PutUint64(buf[o:], uint64(p.Start))
		be.PutUint64(buf[o+8:], uint64(p.Size))
		be.PutUint16(buf[o+16:], uint16(p.Tag))
	}
	be.PutUint16(buf[offChecksum:], checksum(buf[:offChecksum]))
	return buf, nil
}

// Decode parses a 512-byte label sector image.
func Decode(buf []byte) (*Label, error) {
	if len(buf) != labelSize {
		return nil, fmt.Errorf("label: sector image is %d bytes, want %d", len(buf), labelSize)
	}
	be := binary.BigEndian
	if be.Uint32(buf[offMagic:]) != Magic {
		return nil, ErrBadMagic
	}
	if checksum(buf[:offChecksum]) != be.Uint16(buf[offChecksum:]) {
		return nil, ErrBadChecksum
	}
	if v := be.Uint16(buf[offVersion:]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	l := &Label{
		Name: trimNul(buf[offName : offName+nameSize]),
		Geom: geom.Geometry{
			Cylinders:       int(be.Uint32(buf[offCylinders:])),
			TracksPerCyl:    int(be.Uint16(buf[offTracks:])),
			SectorsPerTrack: int(be.Uint16(buf[offSectors:])),
			RPM:             int(be.Uint16(buf[offRPM:])),
		},
	}
	if be.Uint32(buf[offRearranged:]) == RearrangedMagic {
		l.Rearranged = true
		l.ReservedStart = int64(be.Uint64(buf[offResStart:]))
		l.ReservedLen = int64(be.Uint64(buf[offResLen:]))
	}
	n := int(be.Uint16(buf[offNPart:]))
	if n > MaxPartitions {
		return nil, fmt.Errorf("label: partition count %d exceeds table size %d", n, MaxPartitions)
	}
	for i := 0; i < n; i++ {
		o := offParts + i*partEntrySize
		l.Parts = append(l.Parts, Partition{
			Start: int64(be.Uint64(buf[o:])),
			Size:  int64(be.Uint64(buf[o+8:])),
			Tag:   PartTag(be.Uint16(buf[o+16:])),
		})
	}
	if err := l.Geom.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// checksum XORs the sector contents as 16-bit big-endian words, in the
// style of Sun disk labels.
func checksum(data []byte) uint16 {
	var x uint16
	for i := 0; i+1 < len(data); i += 2 {
		x ^= binary.BigEndian.Uint16(data[i:])
	}
	return x
}

func trimNul(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
