// Package geom models disk geometry: the mapping between linear sector
// numbers and (cylinder, track, sector) coordinates, and between file
// system blocks and sectors.
//
// It corresponds to the geometry portion of the UNIX disk label described
// in Section 4.1.1 of "Adaptive Block Rearrangement Under UNIX"
// (Akyürek & Salem). A SCSI disk presents itself as a linear sequence of
// logical sectors; like the paper, we assume sector numbers map directly
// to physical positions.
package geom

import "fmt"

// SectorSize is the size of one disk sector in bytes. Both disks used in
// the paper (Toshiba MK156F and Fujitsu M2266) use 512-byte sectors.
const SectorSize = 512

// Geometry describes the physical layout of a disk.
type Geometry struct {
	// Cylinders is the total number of cylinders on the disk.
	Cylinders int
	// TracksPerCyl is the number of tracks (surfaces) per cylinder.
	TracksPerCyl int
	// SectorsPerTrack is the number of sectors on each track.
	SectorsPerTrack int
	// RPM is the rotational speed in revolutions per minute.
	RPM int
}

// Validate reports an error if any geometry field is non-positive.
func (g Geometry) Validate() error {
	switch {
	case g.Cylinders <= 0:
		return fmt.Errorf("geom: cylinders must be positive, got %d", g.Cylinders)
	case g.TracksPerCyl <= 0:
		return fmt.Errorf("geom: tracks per cylinder must be positive, got %d", g.TracksPerCyl)
	case g.SectorsPerTrack <= 0:
		return fmt.Errorf("geom: sectors per track must be positive, got %d", g.SectorsPerTrack)
	case g.RPM <= 0:
		return fmt.Errorf("geom: RPM must be positive, got %d", g.RPM)
	}
	return nil
}

// SectorsPerCyl returns the number of sectors in one cylinder.
func (g Geometry) SectorsPerCyl() int { return g.TracksPerCyl * g.SectorsPerTrack }

// TotalSectors returns the total number of sectors on the disk.
func (g Geometry) TotalSectors() int64 {
	return int64(g.Cylinders) * int64(g.SectorsPerCyl())
}

// Capacity returns the disk capacity in bytes.
func (g Geometry) Capacity() int64 { return g.TotalSectors() * SectorSize }

// RevolutionMS returns the time of one full platter revolution in
// milliseconds.
func (g Geometry) RevolutionMS() float64 { return 60_000.0 / float64(g.RPM) }

// CylinderOf returns the cylinder that holds the given sector.
func (g Geometry) CylinderOf(sector int64) int {
	if sector < 0 {
		return 0
	}
	c := sector / int64(g.SectorsPerCyl())
	if c >= int64(g.Cylinders) {
		return g.Cylinders - 1
	}
	return int(c)
}

// TrackOf returns the track (surface index within its cylinder) that
// holds the given sector.
func (g Geometry) TrackOf(sector int64) int {
	within := sector % int64(g.SectorsPerCyl())
	return int(within) / g.SectorsPerTrack
}

// SectorInTrack returns the sector's index within its track, in
// [0, SectorsPerTrack).
func (g Geometry) SectorInTrack(sector int64) int {
	return int(sector % int64(g.SectorsPerTrack))
}

// FirstSectorOfCyl returns the first linear sector of the given cylinder.
func (g Geometry) FirstSectorOfCyl(cyl int) int64 {
	return int64(cyl) * int64(g.SectorsPerCyl())
}

// Chs is a (cylinder, track, sector-in-track) coordinate triple.
type Chs struct {
	Cyl, Track, Sector int
}

// ToChs converts a linear sector number to cylinder/track/sector form.
func (g Geometry) ToChs(sector int64) Chs {
	return Chs{
		Cyl:    g.CylinderOf(sector),
		Track:  g.TrackOf(sector),
		Sector: g.SectorInTrack(sector),
	}
}

// FromChs converts a cylinder/track/sector coordinate to a linear sector
// number.
func (g Geometry) FromChs(c Chs) int64 {
	return int64(c.Cyl)*int64(g.SectorsPerCyl()) +
		int64(c.Track)*int64(g.SectorsPerTrack) + int64(c.Sector)
}

// Shrink returns a copy of the geometry with n fewer cylinders. It is
// used to construct the virtual (smaller) disk presented to the file
// system when cylinders are hidden for the reserved region (Section
// 4.1.1 of the paper).
func (g Geometry) Shrink(n int) Geometry {
	out := g
	out.Cylinders -= n
	return out
}

// OrganPipeCylinders returns the cylinders of the half-open range
// [first, first+count) ordered by the organ-pipe heuristic: the middle
// cylinder first, then cylinders on alternating sides of the middle,
// working outward. Placement policies fill reserved cylinders in this
// order (Section 2 of the paper).
func OrganPipeCylinders(first, count int) []int {
	if count <= 0 {
		return nil
	}
	out := make([]int, 0, count)
	mid := first + count/2
	if count%2 == 0 {
		mid = first + count/2 - 1 // lower median for even counts
	}
	out = append(out, mid)
	for d := 1; len(out) < count; d++ {
		if c := mid + d; c < first+count {
			out = append(out, c)
		}
		if len(out) == count {
			break
		}
		if c := mid - d; c >= first {
			out = append(out, c)
		}
	}
	return out
}

// BlockSize describes a file system block size in bytes and provides
// conversions to sectors.
type BlockSize int

// Common block sizes. The paper's file systems use 8 KB blocks with 1 KB
// fragments.
const (
	Block4K BlockSize = 4096
	Block8K BlockSize = 8192
)

// Sectors returns the number of sectors in one block.
func (b BlockSize) Sectors() int { return int(b) / SectorSize }

// Bytes returns the block size in bytes.
func (b BlockSize) Bytes() int { return int(b) }

// BlocksIn returns how many whole blocks fit in n sectors.
func (b BlockSize) BlocksIn(sectors int64) int64 { return sectors / int64(b.Sectors()) }

// SectorOfBlock returns the first sector of block number blk.
func (b BlockSize) SectorOfBlock(blk int64) int64 { return blk * int64(b.Sectors()) }

// BlockOfSector returns the block number containing the given sector.
func (b BlockSize) BlockOfSector(sector int64) int64 { return sector / int64(b.Sectors()) }
