package geom

import (
	"testing"
	"testing/quick"
)

func toshiba() Geometry {
	return Geometry{Cylinders: 815, TracksPerCyl: 10, SectorsPerTrack: 34, RPM: 3600}
}

func fujitsu() Geometry {
	return Geometry{Cylinders: 1658, TracksPerCyl: 15, SectorsPerTrack: 85, RPM: 3600}
}

func TestValidate(t *testing.T) {
	if err := toshiba().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Cylinders: 0, TracksPerCyl: 1, SectorsPerTrack: 1, RPM: 1},
		{Cylinders: 1, TracksPerCyl: 0, SectorsPerTrack: 1, RPM: 1},
		{Cylinders: 1, TracksPerCyl: 1, SectorsPerTrack: -3, RPM: 1},
		{Cylinders: 1, TracksPerCyl: 1, SectorsPerTrack: 1, RPM: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry %+v accepted", i, g)
		}
	}
}

func TestCapacityMatchesPaper(t *testing.T) {
	// Table 1: Toshiba MK156F is a 135 MB disk, Fujitsu M2266 is 1 GB.
	if got := toshiba().Capacity(); got < 130<<20 || got > 145<<20 {
		t.Errorf("Toshiba capacity = %d bytes, want ~135 MB", got)
	}
	if got := fujitsu().Capacity(); got < 1000<<20 || got > 1100<<20 {
		t.Errorf("Fujitsu capacity = %d bytes, want ~1 GB", got)
	}
}

func TestRevolutionMS(t *testing.T) {
	if got := toshiba().RevolutionMS(); got < 16.6 || got > 16.7 {
		t.Errorf("3600 RPM revolution = %v ms, want 16.67", got)
	}
}

func TestChsRoundTrip(t *testing.T) {
	g := toshiba()
	f := func(s uint32) bool {
		sector := int64(s) % g.TotalSectors()
		return g.FromChs(g.ToChs(sector)) == sector
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChsRanges(t *testing.T) {
	g := fujitsu()
	for _, sector := range []int64{0, 1, 84, 85, 1274, 1275, g.TotalSectors() - 1} {
		c := g.ToChs(sector)
		if c.Cyl < 0 || c.Cyl >= g.Cylinders {
			t.Errorf("sector %d: cylinder %d out of range", sector, c.Cyl)
		}
		if c.Track < 0 || c.Track >= g.TracksPerCyl {
			t.Errorf("sector %d: track %d out of range", sector, c.Track)
		}
		if c.Sector < 0 || c.Sector >= g.SectorsPerTrack {
			t.Errorf("sector %d: sector-in-track %d out of range", sector, c.Sector)
		}
	}
}

func TestCylinderOfBoundaries(t *testing.T) {
	g := toshiba()
	spc := int64(g.SectorsPerCyl())
	if got := g.CylinderOf(0); got != 0 {
		t.Errorf("CylinderOf(0) = %d", got)
	}
	if got := g.CylinderOf(spc - 1); got != 0 {
		t.Errorf("CylinderOf(last of cyl 0) = %d", got)
	}
	if got := g.CylinderOf(spc); got != 1 {
		t.Errorf("CylinderOf(first of cyl 1) = %d", got)
	}
	// Clamped at both ends rather than out of range.
	if got := g.CylinderOf(-5); got != 0 {
		t.Errorf("CylinderOf(-5) = %d", got)
	}
	if got := g.CylinderOf(g.TotalSectors() + 100); got != g.Cylinders-1 {
		t.Errorf("CylinderOf(beyond end) = %d", got)
	}
}

func TestShrink(t *testing.T) {
	g := toshiba().Shrink(48)
	if g.Cylinders != 815-48 {
		t.Errorf("Shrink(48).Cylinders = %d", g.Cylinders)
	}
	if g.SectorsPerTrack != 34 || g.TracksPerCyl != 10 {
		t.Error("Shrink changed non-cylinder fields")
	}
}

func TestOrganPipeCylinders(t *testing.T) {
	got := OrganPipeCylinders(10, 5)
	want := []int{12, 13, 11, 14, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOrganPipeCylindersEven(t *testing.T) {
	got := OrganPipeCylinders(0, 4)
	if len(got) != 4 {
		t.Fatalf("got %d cylinders, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if c < 0 || c >= 4 {
			t.Errorf("cylinder %d out of range", c)
		}
		if seen[c] {
			t.Errorf("cylinder %d repeated", c)
		}
		seen[c] = true
	}
	if got[0] != 1 {
		t.Errorf("even-count middle = %d, want lower median 1", got[0])
	}
}

func TestOrganPipeCylindersProperty(t *testing.T) {
	// Every cylinder appears exactly once, and distance from the middle
	// never decreases along the sequence.
	f := func(firstRaw, countRaw uint8) bool {
		first := int(firstRaw)
		count := int(countRaw)%64 + 1
		got := OrganPipeCylinders(first, count)
		if len(got) != count {
			return false
		}
		seen := make(map[int]bool)
		mid := got[0]
		prevDist := 0
		for _, c := range got {
			if c < first || c >= first+count || seen[c] {
				return false
			}
			seen[c] = true
			d := c - mid
			if d < 0 {
				d = -d
			}
			if d < prevDist {
				return false
			}
			prevDist = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrganPipeCylindersEmpty(t *testing.T) {
	if got := OrganPipeCylinders(5, 0); got != nil {
		t.Errorf("count 0 should return nil, got %v", got)
	}
	if got := OrganPipeCylinders(5, -3); got != nil {
		t.Errorf("negative count should return nil, got %v", got)
	}
}

func TestBlockSize(t *testing.T) {
	if Block8K.Sectors() != 16 {
		t.Errorf("8K block = %d sectors, want 16", Block8K.Sectors())
	}
	if Block4K.Sectors() != 8 {
		t.Errorf("4K block = %d sectors, want 8", Block4K.Sectors())
	}
	if Block8K.SectorOfBlock(3) != 48 {
		t.Errorf("SectorOfBlock(3) = %d", Block8K.SectorOfBlock(3))
	}
	if Block8K.BlockOfSector(47) != 2 {
		t.Errorf("BlockOfSector(47) = %d", Block8K.BlockOfSector(47))
	}
	if Block8K.BlocksIn(165) != 10 {
		t.Errorf("BlocksIn(165) = %d", Block8K.BlocksIn(165))
	}
}

func TestBlockSectorRoundTrip(t *testing.T) {
	f := func(b uint16) bool {
		blk := int64(b)
		return Block8K.BlockOfSector(Block8K.SectorOfBlock(blk)) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservedRegionSizesMatchPaper(t *testing.T) {
	// Section 5: 48 reserved cylinders on the Toshiba ≈ 8 MB (~1000 8K
	// blocks, ~6% of capacity); 80 cylinders on the Fujitsu ≈ 50 MB (~5%).
	tosh := toshiba()
	resBytes := int64(48) * int64(tosh.SectorsPerCyl()) * SectorSize
	if mb := float64(resBytes) / (1 << 20); mb < 7.5 || mb > 8.5 {
		t.Errorf("Toshiba 48-cylinder reserved region = %.1f MB, want ~8", mb)
	}
	if blocks := Block8K.BlocksIn(int64(48) * int64(tosh.SectorsPerCyl())); blocks < 1000 || blocks > 1030 {
		t.Errorf("Toshiba reserved region holds %d 8K blocks, want ~1018", blocks)
	}
	fuji := fujitsu()
	resBytes = int64(80) * int64(fuji.SectorsPerCyl()) * SectorSize
	if mb := float64(resBytes) / (1 << 20); mb < 45 || mb > 55 {
		t.Errorf("Fujitsu 80-cylinder reserved region = %.1f MB, want ~50", mb)
	}
}

func TestFirstSectorOfCyl(t *testing.T) {
	g := toshiba()
	spc := int64(g.SectorsPerCyl())
	for _, cyl := range []int{0, 1, 47, g.Cylinders - 1} {
		if got := g.FirstSectorOfCyl(cyl); got != int64(cyl)*spc {
			t.Errorf("FirstSectorOfCyl(%d) = %d, want %d", cyl, got, int64(cyl)*spc)
		}
		if g.CylinderOf(g.FirstSectorOfCyl(cyl)) != cyl {
			t.Errorf("cylinder %d does not round-trip through its first sector", cyl)
		}
	}
}

func TestBlockSizeBytes(t *testing.T) {
	if Block8K.Bytes() != 8192 {
		t.Errorf("Block8K.Bytes() = %d", Block8K.Bytes())
	}
	if Block4K.Bytes() != 4096 {
		t.Errorf("Block4K.Bytes() = %d", Block4K.Bytes())
	}
}
