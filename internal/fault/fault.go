// Package fault models an imperfect disk: a deterministic, seedable
// fault plan that the disk and driver consult on every device
// operation.
//
// The paper's safety argument (Section 4.1.2 and the DKIOCBCOPY
// protocol) is that block rearrangement survives media errors and
// crashes: copies go to a free block first, the on-disk table is
// updated with dirty bits, and recovery marks all entries dirty. A
// simulator can only check that argument if its disk can actually
// fail, so a Plan describes three fault dimensions:
//
//   - permanent media errors on configured sector ranges (grown
//     defects: every access to an overlapping range fails);
//   - transient errors with a per-operation probability, drawn from a
//     deterministic generator keyed by (seed, operation index) so a
//     run's fault sequence is byte-identical for any worker count;
//   - crash points — simulated power loss after N device operations,
//     or at the K-th occurrence of a named driver phase (mid
//     block-copy, mid table write) — which truncate the in-flight
//     write to a torn, partial sector image and kill the device.
//
// The zero Plan injects nothing; a nil *Injector is the zero-cost
// path (a single pointer comparison on the device hot path).
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Class discriminates injected fault kinds.
type Class uint8

const (
	// Transient is a soft error: retrying the same operation draws a
	// fresh outcome and usually succeeds.
	Transient Class = iota + 1
	// Media is a permanent error: the sector range is bad and every
	// access fails until the block is remapped elsewhere.
	Media
	// Crash is simulated power loss: the in-flight write is torn and
	// the device stops servicing operations.
	Crash
)

// String names the class for errors and telemetry.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Media:
		return "media"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ErrCrash is wrapped by every fault error delivered after (or at)
// the simulated power loss.
var ErrCrash = errors.New("fault: simulated power loss")

// Error is the injected device error. The driver classifies it with
// errors.As to choose between retry, remap, and propagation.
type Error struct {
	Class  Class
	Write  bool
	Sector int64
	Count  int
	// Op is the device operation index at which the fault fired.
	Op int64
}

// Error implements the error interface.
func (e *Error) Error() string {
	dir := "read"
	if e.Write {
		dir = "write"
	}
	return fmt.Sprintf("fault: %s error on %s of [%d, %d) at op %d",
		e.Class, dir, e.Sector, e.Sector+int64(e.Count), e.Op)
}

// Unwrap lets errors.Is(err, ErrCrash) identify power loss.
func (e *Error) Unwrap() error {
	if e.Class == Crash {
		return ErrCrash
	}
	return nil
}

// SectorRange is a half-open range [Start, End) of physical sectors.
type SectorRange struct {
	Start, End int64
}

// overlaps reports whether the range intersects [sector, sector+count).
func (r SectorRange) overlaps(sector int64, count int) bool {
	return sector < r.End && sector+int64(count) > r.Start
}

// Plan is a declarative fault schedule. Plans are plain data: copy
// them freely, encode them in experiment setups, parse them from the
// command line. The zero value injects no faults.
type Plan struct {
	// Seed keys the deterministic per-operation generator. Zero is a
	// valid seed (it is remapped internally to a fixed constant).
	Seed uint64
	// Bad lists permanently unreadable/unwritable sector ranges.
	Bad []SectorRange
	// TransientRead and TransientWrite are per-operation probabilities
	// of a soft error, in [0, 1).
	TransientRead  float64
	TransientWrite float64
	// CrashAfterOps, when positive, cuts power on the Nth device
	// operation (1-based).
	CrashAfterOps int64
	// CrashPhase, when non-empty, cuts power at a named driver phase
	// ("bcopy-copy", "table-write", ...). CrashPhaseSkip phase
	// occurrences are let through first, so a harness can crash the
	// K-th block copy rather than the first.
	CrashPhase     string
	CrashPhaseSkip int
}

// Active reports whether the plan can inject anything.
func (p Plan) Active() bool {
	return len(p.Bad) > 0 || p.TransientRead > 0 || p.TransientWrite > 0 ||
		p.CrashAfterOps > 0 || p.CrashPhase != ""
}

// String renders the plan in ParsePlan's grammar (diagnostics, job
// labels).
func (p Plan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	}
	for _, r := range p.Bad {
		parts = append(parts, fmt.Sprintf("bad=%d-%d", r.Start, r.End))
	}
	if p.TransientRead > 0 {
		parts = append(parts, "tread="+strconv.FormatFloat(p.TransientRead, 'g', -1, 64))
	}
	if p.TransientWrite > 0 {
		parts = append(parts, "twrite="+strconv.FormatFloat(p.TransientWrite, 'g', -1, 64))
	}
	if p.CrashAfterOps > 0 {
		parts = append(parts, "crash-after="+strconv.FormatInt(p.CrashAfterOps, 10))
	}
	if p.CrashPhase != "" {
		s := "crash-at=" + p.CrashPhase
		if p.CrashPhaseSkip > 0 {
			s += ":" + strconv.Itoa(p.CrashPhaseSkip)
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the -fault-plan grammar: semicolon- or
// comma-separated directives.
//
//	seed=S             generator seed
//	bad=LO-HI          permanent media errors on sectors [LO, HI) (repeatable)
//	tread=P            transient error probability per read
//	twrite=P           transient error probability per write
//	transient=P        shorthand for tread=P;twrite=P
//	crash-after=N      power loss on the Nth device operation
//	crash-at=PHASE[:K] power loss at the (K+1)-th operation of the named phase
//
// An empty spec returns the zero plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, tok := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: directive %q is not key=value", tok)
		}
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = s
		case "bad":
			lo, hi, ok := strings.Cut(val, "-")
			if !ok {
				return Plan{}, fmt.Errorf("fault: bad range %q, want LO-HI", val)
			}
			start, err1 := strconv.ParseInt(lo, 10, 64)
			end, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || start < 0 || end <= start {
				return Plan{}, fmt.Errorf("fault: bad range %q", val)
			}
			p.Bad = append(p.Bad, SectorRange{Start: start, End: end})
		case "tread", "twrite", "transient":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f >= 1 {
				return Plan{}, fmt.Errorf("fault: probability %q outside [0, 1)", val)
			}
			if key != "twrite" {
				p.TransientRead = f
			}
			if key != "tread" {
				p.TransientWrite = f
			}
		case "crash-after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Plan{}, fmt.Errorf("fault: crash-after %q must be a positive op count", val)
			}
			p.CrashAfterOps = n
		case "crash-at":
			phase, skip, hasSkip := strings.Cut(val, ":")
			if phase == "" {
				return Plan{}, fmt.Errorf("fault: crash-at needs a phase name")
			}
			p.CrashPhase = phase
			if hasSkip {
				k, err := strconv.Atoi(skip)
				if err != nil || k < 0 {
					return Plan{}, fmt.Errorf("fault: crash-at skip %q", skip)
				}
				p.CrashPhaseSkip = k
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown directive %q", key)
		}
	}
	sort.Slice(p.Bad, func(i, j int) bool { return p.Bad[i].Start < p.Bad[j].Start })
	return p, nil
}

// Injector is the runtime consulted by the disk on every device
// operation. It is single-threaded, like everything on a simulation
// engine; the per-operation draws depend only on (seed, op index), so
// two runs with the same plan and the same operation sequence inject
// identical faults regardless of how jobs are scheduled onto workers.
type Injector struct {
	plan    Plan
	ops     int64
	phase   string
	phaseN  map[string]int
	crashed bool

	// Counters, for probes and reports.
	nTransient, nMedia int64
}

// NewInjector returns an injector executing the plan. A nil receiver
// is valid everywhere and injects nothing.
func NewInjector(p Plan) *Injector {
	return &Injector{plan: p, phaseN: make(map[string]int)}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Ops returns the number of device operations observed so far.
func (in *Injector) Ops() int64 {
	if in == nil {
		return 0
	}
	return in.ops
}

// Crashed reports whether the simulated power loss has happened.
func (in *Injector) Crashed() bool { return in != nil && in.crashed }

// Counts returns how many transient and permanent media faults have
// been injected.
func (in *Injector) Counts() (transient, media int64) {
	if in == nil {
		return 0, 0
	}
	return in.nTransient, in.nMedia
}

// SetPhase tags subsequent operations with a driver phase name
// ("bcopy-copy", "table-write", ...). The driver sets it around each
// dispatched operation; an empty name clears the tag.
func (in *Injector) SetPhase(phase string) {
	if in != nil {
		in.phase = phase
	}
}

// BeginOp accounts one device operation and returns the injected
// fault, or nil. Crash outcomes take precedence over media errors,
// which take precedence over transient errors. After a crash every
// operation fails with a Crash-class error.
func (in *Injector) BeginOp(write bool, sector int64, count int) *Error {
	if in == nil {
		return nil
	}
	in.ops++
	mk := func(c Class) *Error {
		return &Error{Class: c, Write: write, Sector: sector, Count: count, Op: in.ops}
	}
	if in.crashed {
		return mk(Crash)
	}
	if in.plan.CrashAfterOps > 0 && in.ops >= in.plan.CrashAfterOps {
		in.crashed = true
		return mk(Crash)
	}
	if in.plan.CrashPhase != "" && in.phase == in.plan.CrashPhase {
		n := in.phaseN[in.phase]
		in.phaseN[in.phase] = n + 1
		if n >= in.plan.CrashPhaseSkip {
			in.crashed = true
			return mk(Crash)
		}
	}
	for _, r := range in.plan.Bad {
		if r.overlaps(sector, count) {
			in.nMedia++
			return mk(Media)
		}
	}
	prob := in.plan.TransientRead
	if write {
		prob = in.plan.TransientWrite
	}
	if prob > 0 && in.draw(in.ops) < prob {
		in.nTransient++
		return mk(Transient)
	}
	return nil
}

// TornBytes returns the deterministic length, in [0, total), of the
// prefix a crashed write managed to put on the media — generally a
// torn, partial sector image. The draw is keyed by the crash
// operation's index, so the torn image is reproducible.
func (in *Injector) TornBytes(total int) int {
	if in == nil || total <= 0 {
		return 0
	}
	return int(in.hash(uint64(in.ops)^0xC2B2AE3D27D4EB4F) % uint64(total))
}

// draw returns a uniform float64 in [0, 1) keyed by (seed, op index).
func (in *Injector) draw(op int64) float64 {
	return float64(in.hash(uint64(op))>>11) / (1 << 53)
}

// hash is a splitmix64-style mix of the plan seed and a key: stateless,
// so an operation's outcome never depends on how many draws other
// components made.
func (in *Injector) hash(key uint64) uint64 {
	seed := in.plan.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	z := seed ^ (key * 0xBF58476D1CE4E5B9)
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 31
	return z
}
