package fault

import (
	"errors"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{})
	for i := 0; i < 10_000; i++ {
		if e := in.BeginOp(i%2 == 0, int64(i*7), 16); e != nil {
			t.Fatalf("op %d: unexpected fault %v", i, e)
		}
	}
	if in.Ops() != 10_000 {
		t.Errorf("Ops = %d", in.Ops())
	}
	if in.Crashed() {
		t.Error("zero plan crashed")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if e := in.BeginOp(true, 0, 1); e != nil {
		t.Errorf("nil injector injected %v", e)
	}
	in.SetPhase("x")
	if in.Crashed() || in.Ops() != 0 || in.TornBytes(512) != 0 {
		t.Error("nil injector not inert")
	}
}

func TestBadRangesArePermanent(t *testing.T) {
	in := NewInjector(Plan{Bad: []SectorRange{{Start: 100, End: 116}}})
	for i := 0; i < 3; i++ {
		e := in.BeginOp(false, 96, 16) // [96,112) overlaps [100,116)
		if e == nil || e.Class != Media {
			t.Fatalf("attempt %d: %v", i, e)
		}
	}
	if e := in.BeginOp(false, 116, 16); e != nil {
		t.Errorf("adjacent range faulted: %v", e)
	}
	if e := in.BeginOp(true, 84, 16); e != nil {
		t.Errorf("[84,100) touches nothing: %v", e)
	}
}

func TestTransientRateAndDeterminism(t *testing.T) {
	run := func() (faults int, seq []int64) {
		in := NewInjector(Plan{Seed: 7, TransientRead: 0.05})
		for i := 0; i < 20_000; i++ {
			if e := in.BeginOp(false, int64(i), 1); e != nil {
				if e.Class != Transient {
					t.Fatalf("op %d: class %v", i, e.Class)
				}
				faults++
				seq = append(seq, e.Op)
			}
		}
		return
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 {
		t.Fatalf("two identical runs injected %d vs %d faults", n1, n2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault sequences diverge at %d", i)
		}
	}
	// Rate should be near 5%.
	if n1 < 700 || n1 > 1300 {
		t.Errorf("%d transient faults in 20000 ops at p=0.05", n1)
	}
	// Writes use the write probability (0 here).
	in := NewInjector(Plan{Seed: 7, TransientRead: 0.05})
	for i := 0; i < 5000; i++ {
		if e := in.BeginOp(true, int64(i), 1); e != nil {
			t.Fatalf("write faulted with TransientWrite=0: %v", e)
		}
	}
}

func TestSeedChangesFaultSequence(t *testing.T) {
	ops := func(seed uint64) []int64 {
		in := NewInjector(Plan{Seed: seed, TransientRead: 0.05})
		var out []int64
		for i := 0; i < 5000; i++ {
			if e := in.BeginOp(false, int64(i), 1); e != nil {
				out = append(out, e.Op)
			}
		}
		return out
	}
	a, b := ops(1), ops(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestCrashAfterOps(t *testing.T) {
	in := NewInjector(Plan{CrashAfterOps: 5})
	for i := 1; i <= 4; i++ {
		if e := in.BeginOp(true, 0, 1); e != nil {
			t.Fatalf("op %d faulted early: %v", i, e)
		}
	}
	e := in.BeginOp(true, 0, 1)
	if e == nil || e.Class != Crash {
		t.Fatalf("op 5: %v", e)
	}
	if !errors.Is(e, ErrCrash) {
		t.Error("crash error does not unwrap to ErrCrash")
	}
	if !in.Crashed() {
		t.Error("injector not crashed")
	}
	// Everything after the crash fails too.
	if e := in.BeginOp(false, 0, 1); e == nil || e.Class != Crash {
		t.Errorf("post-crash op: %v", e)
	}
}

func TestCrashAtPhaseWithSkip(t *testing.T) {
	in := NewInjector(Plan{CrashPhase: "table-write", CrashPhaseSkip: 2})
	// Non-matching phases never crash.
	in.SetPhase("bcopy-copy")
	if e := in.BeginOp(true, 0, 1); e != nil {
		t.Fatalf("wrong phase crashed: %v", e)
	}
	in.SetPhase("table-write")
	for i := 0; i < 2; i++ {
		if e := in.BeginOp(true, 0, 1); e != nil {
			t.Fatalf("skipped occurrence %d crashed: %v", i, e)
		}
	}
	if e := in.BeginOp(true, 0, 1); e == nil || e.Class != Crash {
		t.Fatalf("third table write: %v", e)
	}
}

func TestTornBytesDeterministicAndBounded(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, CrashAfterOps: 1})
	in.BeginOp(true, 0, 16)
	a := in.TornBytes(16 * 512)
	b := in.TornBytes(16 * 512)
	if a != b {
		t.Errorf("TornBytes not deterministic: %d vs %d", a, b)
	}
	if a < 0 || a >= 16*512 {
		t.Errorf("TornBytes %d outside [0, %d)", a, 16*512)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=42;bad=100-200;bad=500-516;tread=0.01;twrite=0.02;crash-after=9;crash-at=table-write:1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Bad) != 2 || p.Bad[0] != (SectorRange{100, 200}) ||
		p.TransientRead != 0.01 || p.TransientWrite != 0.02 ||
		p.CrashAfterOps != 9 || p.CrashPhase != "table-write" || p.CrashPhaseSkip != 1 {
		t.Errorf("parsed %+v", p)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back.String() != p.String() {
		t.Errorf("round trip %q -> %q", p.String(), back.String())
	}
}

func TestParsePlanTransientShorthandAndEmpty(t *testing.T) {
	p, err := ParsePlan("transient=0.1")
	if err != nil || p.TransientRead != 0.1 || p.TransientWrite != 0.1 {
		t.Errorf("transient shorthand: %+v, %v", p, err)
	}
	if p, err := ParsePlan(""); err != nil || p.Active() {
		t.Errorf("empty spec: %+v, %v", p, err)
	}
	if (Plan{}).String() != "none" {
		t.Errorf("zero plan renders %q", Plan{}.String())
	}
}

func TestParsePlanRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"nope", "bad=5", "bad=9-3", "tread=2", "tread=x",
		"crash-after=0", "crash-after=x", "crash-at=", "crash-at=p:-1",
		"frob=1", "seed=abc",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
