package fault

import (
	"reflect"
	"testing"
)

// FuzzParsePlan checks two properties over the -fault-plan grammar:
// ParsePlan never panics on arbitrary input, and any spec it accepts
// round-trips — rendering the parsed plan with String and parsing that
// again yields an identical plan. The zero plan renders as "none",
// which is a display form, not grammar, so it is exempt from re-parse.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"none",
		"seed=7",
		"bad=100-200",
		"bad=0-1;bad=5000-5008",
		"tread=0.01",
		"twrite=0.5",
		"transient=0.001",
		"crash-after=4000",
		"crash-at=bcopy-copy",
		"crash-at=table-write:3",
		"seed=9;bad=10-20,tread=0.25;crash-after=1",
		"seed=18446744073709551615",
		"bad=9223372036854775806-9223372036854775807",
		"tread=1e-300",
		" seed=1 ; bad=2-3 ",
		"seed=x",
		"bad=20-10",
		"transient=1.5",
		"crash-at=:4",
		"what=ever",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return // rejected input: no panic is the whole property
		}
		s := p.String()
		if s == "none" {
			if p.Active() {
				t.Fatalf("ParsePlan(%q) is active but renders as none", spec)
			}
			return
		}
		p2, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q) accepted, but its rendering %q does not re-parse: %v", spec, s, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round-trip mismatch for %q:\n first: %+v (%q)\nsecond: %+v", spec, p, s, p2)
		}
	})
}
