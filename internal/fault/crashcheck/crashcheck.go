// Package crashcheck is the crash-consistency harness: it drives a
// scripted rearrangement workload into a simulated power loss, reboots
// the stack the way a kernel would (re-attach with recovery), and
// verifies the paper's crash invariants (Section 4.1.2):
//
//   - the on-disk block table still decodes, and recovery marks every
//     entry dirty;
//   - no block is lost or aliased: each table entry maps a distinct
//     original block to a distinct reserved slot inside the reserved
//     region;
//   - every logical block remains readable, and every write the driver
//     acknowledged before the crash reads back exactly.
//
// The one write that may have been in flight at the instant of the
// crash is exempt from the content check (the disk legitimately holds a
// torn image of it) but must still be readable.
package crashcheck

import (
	"bytes"
	"fmt"

	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/rig"
	"repro/internal/sim"
)

// Result summarizes one crash-recovery check.
type Result struct {
	// Ops is the number of device operations before the power loss.
	Ops int64
	// AckedWrites is how many block writes the driver acknowledged as
	// durable before the crash.
	AckedWrites int
	// Entries is the size of the recovered block table.
	Entries int
	// Moves is how many BCopy calls completed before the crash.
	Moves int
}

// workBlocks is the pool of partition blocks the scripted workload
// cycles through; spread out so moves change seek behaviour.
var workBlocks = []int64{0, 40, 80, 120, 160, 200, 240, 280, 320, 360}

// content is the deterministic block image for write version v of blk.
func content(blk int64, v int) []byte {
	b := make([]byte, geom.Block8K.Bytes())
	for i := range b {
		b[i] = byte(int64(i)+blk*7) ^ byte(v*13+1)
	}
	return b
}

// Check drives the scripted workload under plan until the planned crash
// fires, reboots, and verifies the crash invariants. The plan must
// contain a crash point (CrashAfterOps or CrashPhase); Check fails if
// the workload completes without crashing.
func Check(plan fault.Plan) (*Result, error) {
	r, err := rig.New(rig.Options{ReservedCyls: 48, Fault: &plan})
	if err != nil {
		return nil, err
	}
	if r.Faults == nil {
		return nil, fmt.Errorf("crashcheck: plan %q is inactive", plan.String())
	}

	// Scripted workload: seed every block with version 0, then rounds
	// of (rearrange one block, rewrite two blocks — one of them
	// rearranged, so table entries go dirty) until the crash fires.
	// acked tracks the last version whose write completed without
	// error; inflight the one write outstanding at any instant.
	acked := make(map[int64][]byte)
	version := make(map[int64]int)
	slots := r.Driver.ReservedSlots()
	var flat []int64
	for _, cyl := range slots {
		flat = append(flat, cyl...)
	}

	write := func(blk int64, v int) {
		data := content(blk, v)
		r.Driver.WriteBlock(0, blk, data, func(_ []byte, err error) {
			if err == nil {
				acked[blk] = data
			}
		})
		version[blk] = v
	}
	moves := 0
	for _, blk := range workBlocks {
		write(blk, 0)
	}
	r.Eng.Run()

	p, _ := r.Label.Partition(0)
	for round := 0; !r.Faults.Crashed() && round < 64; round++ {
		if round < len(workBlocks) && round < len(flat) {
			blk := workBlocks[round]
			orig := r.Label.MapVirtual(p.Start + blk*16)
			r.Driver.BCopy(orig, flat[round], func(err error) {
				if err == nil {
					moves++
				}
			})
		}
		blk := workBlocks[round%len(workBlocks)]
		write(blk, version[blk]+1)
		blk2 := workBlocks[(round+3)%len(workBlocks)]
		write(blk2, version[blk2]+1)
		r.Eng.Run()
	}
	if !r.Faults.Crashed() {
		return nil, fmt.Errorf("crashcheck: workload completed without crashing (plan %q)", plan.String())
	}
	res := &Result{Ops: r.Faults.Ops(), AckedWrites: len(acked), Moves: moves}

	// Reboot: power is back, the fault plan is gone, and the driver
	// re-attaches with the conservative recovery path.
	r.Disk.SetFaults(nil)
	eng2 := sim.NewEngine()
	drv, err := driver.Attach(eng2, r.Disk, driver.Config{}, true)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: recovery attach: %w", err)
	}

	// Invariant 1: recovered entries are all dirty, unaliased, and
	// point into the usable reserved region. (Decoding itself rejects
	// duplicate originals and slots.)
	entries := drv.BlockTable()
	res.Entries = len(entries)
	tableEnd := r.Label.ReservedStart + int64(driver.TableSectors(geom.Block8K))
	for _, e := range entries {
		if !e.Dirty {
			return nil, fmt.Errorf("crashcheck: recovered entry %d -> %d is not dirty", e.Orig, e.New)
		}
		if !r.Label.InReserved(e.New) || e.New < tableEnd {
			return nil, fmt.Errorf("crashcheck: recovered entry %d -> %d points outside the usable reserved region", e.Orig, e.New)
		}
		if r.Label.InReserved(e.Orig) {
			return nil, fmt.Errorf("crashcheck: recovered entry original %d lies in the reserved region", e.Orig)
		}
	}

	// Invariants 2 and 3: every workload block is readable, and a block
	// whose latest write was acknowledged reads back exactly that
	// content. A block whose latest write was still in flight at the
	// crash may hold a torn image (that is what a real power loss does
	// to an unacknowledged write), but it must still be readable.
	for _, blk := range workBlocks {
		var got []byte
		var rerr error
		drv.ReadBlock(0, blk, func(data []byte, err error) { got, rerr = data, err })
		eng2.Run()
		if rerr != nil {
			return nil, fmt.Errorf("crashcheck: block %d unreadable after recovery: %w", blk, rerr)
		}
		want := content(blk, version[blk])
		if bytes.Equal(acked[blk], want) && !bytes.Equal(got, want) {
			return nil, fmt.Errorf("crashcheck: block %d lost its acknowledged write", blk)
		}
	}
	return res, nil
}
