package crashcheck

import (
	"testing"

	"repro/internal/fault"
)

func TestCrashMidBlockCopy(t *testing.T) {
	// Power dies during the third BCopy's write of the reserved copy:
	// the copy is torn, but the table write never happened, so recovery
	// must see exactly the two committed moves.
	res, err := Check(fault.Plan{Seed: 11, CrashPhase: "bcopy-copy", CrashPhaseSkip: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 2 || res.Moves != 2 {
		t.Errorf("recovered %d entries after %d committed moves, want 2/2", res.Entries, res.Moves)
	}
}

func TestCrashMidTableWrite(t *testing.T) {
	// Power dies during the third table write. Depending on where the
	// tear lands, either the new image made it out intact (recovery
	// sees 3 entries via the freshly written slot) or the slot is torn
	// and the other slot's previous generation wins (2 entries). Both
	// are consistent; anything else is a bug. Sweep seeds to exercise
	// both outcomes and require that at least one seed produces a
	// genuinely torn slot.
	// Seed 350 is a searched-for seed whose tear lands inside the
	// encoded table bytes, forcing the fall back to the older slot.
	sawTorn := false
	for _, seed := range []uint64{1, 2, 3, 4, 350, 1287} {
		res, err := Check(fault.Plan{Seed: seed, CrashPhase: "table-write", CrashPhaseSkip: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Moves != 2 || res.Entries < 2 || res.Entries > 3 {
			t.Errorf("seed %d: recovered %d entries after %d committed moves", seed, res.Entries, res.Moves)
		}
		if res.Entries == 2 {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Error("no seed tore the table write; the dual-slot fallback went unexercised")
	}
}

func TestCrashAfterOpsSweep(t *testing.T) {
	// Crash at arbitrary operation counts; the invariants must hold at
	// every point, wherever the guillotine lands.
	for _, n := range []int64{11, 14, 17, 23, 31, 47, 63} {
		res, err := Check(fault.Plan{Seed: uint64(n), CrashAfterOps: n})
		if err != nil {
			t.Fatalf("crash-after=%d: %v", n, err)
		}
		if res.Ops < n {
			t.Errorf("crash-after=%d: only %d ops recorded", n, res.Ops)
		}
	}
}

func TestRequiresCrashPoint(t *testing.T) {
	if _, err := Check(fault.Plan{Seed: 1, TransientRead: 0.01}); err == nil {
		t.Error("plan without a crash point accepted")
	}
}
