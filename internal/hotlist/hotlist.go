// Package hotlist implements the reference-counting data structures used
// by the reference stream analyzer (Section 4.2 of "Adaptive Block
// Rearrangement Under UNIX").
//
// The analyzer maintains a list of block-number/reference-count pairs.
// In the worst case an exact list is proportional to the number of
// blocks on the disk, so the paper bounds its size and applies a
// replacement heuristic when a block not on the list is referenced; with
// a list of several thousand entries replacement is rarely necessary,
// and the experiments in [Salem 92, Salem 93] show that much shorter
// lists still produce accurate hot-block guesses. Both the exact counter
// and two bounded variants are provided; the bounded variants are used
// by the hot-list-size ablation benchmark.
package hotlist

import "sort"

// BlockCount is one block-number/reference-count pair.
type BlockCount struct {
	Block int64
	Count int64
}

// Counter accumulates block reference counts and reports the hottest
// blocks.
type Counter interface {
	// Observe records one reference to block.
	Observe(block int64)
	// Top returns up to k blocks ordered by descending estimated count,
	// ties broken by ascending block number.
	Top(k int) []BlockCount
	// Len returns the number of blocks currently tracked.
	Len() int
	// Reset forgets all counts.
	Reset()
}

// Exact counts every block it sees, without bound.
type Exact struct {
	counts map[int64]int64
}

// NewExact returns an unbounded counter.
func NewExact() *Exact {
	return &Exact{counts: make(map[int64]int64)}
}

// Observe implements Counter.
func (e *Exact) Observe(block int64) { e.counts[block]++ }

// Len implements Counter.
func (e *Exact) Len() int { return len(e.counts) }

// Reset implements Counter.
func (e *Exact) Reset() { e.counts = make(map[int64]int64) }

// Top implements Counter.
func (e *Exact) Top(k int) []BlockCount {
	all := make([]BlockCount, 0, len(e.counts))
	for b, c := range e.counts {
		all = append(all, BlockCount{Block: b, Count: c})
	}
	sortCounts(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Count returns the exact count for one block.
func (e *Exact) Count(block int64) int64 { return e.counts[block] }

// Total returns the total number of observations.
func (e *Exact) Total() int64 {
	var n int64
	for _, c := range e.counts {
		n += c
	}
	return n
}

// Distribution returns all counts ordered hottest-first; it is the raw
// material of the paper's block-access-distribution figures (5 and 7).
func (e *Exact) Distribution() []BlockCount { return e.Top(len(e.counts)) }

// ReplacePolicy selects the bounded counter's behaviour when a new block
// arrives and the list is full.
type ReplacePolicy int

const (
	// ReplaceMin replaces the minimum-count entry and credits the new
	// block with min+1 (the space-saving heuristic): counts become upper
	// bounds, and recently-hot blocks displace stale ones quickly.
	ReplaceMin ReplacePolicy = iota
	// EvictMin discards the minimum-count entry and starts the new block
	// at count 1: simpler, but slower to adapt.
	EvictMin
)

// Bounded is a fixed-capacity counter with a replacement heuristic.
type Bounded struct {
	capacity int
	policy   ReplacePolicy
	counts   map[int64]int64
	replaced int64
}

// NewBounded returns a counter that tracks at most capacity blocks.
func NewBounded(capacity int, policy ReplacePolicy) *Bounded {
	if capacity <= 0 {
		capacity = 1
	}
	return &Bounded{
		capacity: capacity,
		policy:   policy,
		counts:   make(map[int64]int64, capacity),
	}
}

// Observe implements Counter.
func (b *Bounded) Observe(block int64) {
	if _, ok := b.counts[block]; ok {
		b.counts[block]++
		return
	}
	if len(b.counts) < b.capacity {
		b.counts[block] = 1
		return
	}
	b.replaced++
	// Find the minimum-count entry (ties: highest block number goes, so
	// that behaviour is deterministic).
	var minBlock int64
	minCount := int64(-1)
	for blk, c := range b.counts {
		if minCount == -1 || c < minCount || (c == minCount && blk > minBlock) {
			minBlock, minCount = blk, c
		}
	}
	delete(b.counts, minBlock)
	switch b.policy {
	case ReplaceMin:
		b.counts[block] = minCount + 1
	default:
		b.counts[block] = 1
	}
}

// Len implements Counter.
func (b *Bounded) Len() int { return len(b.counts) }

// Reset implements Counter.
func (b *Bounded) Reset() {
	b.counts = make(map[int64]int64, b.capacity)
	b.replaced = 0
}

// Replacements returns how many times the heuristic had to make room —
// the paper sizes the list so that this is rarely non-zero.
func (b *Bounded) Replacements() int64 { return b.replaced }

// Top implements Counter.
func (b *Bounded) Top(k int) []BlockCount {
	all := make([]BlockCount, 0, len(b.counts))
	for blk, c := range b.counts {
		all = append(all, BlockCount{Block: blk, Count: c})
	}
	sortCounts(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func sortCounts(xs []BlockCount) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Count != xs[j].Count {
			return xs[i].Count > xs[j].Count
		}
		return xs[i].Block < xs[j].Block
	})
}

// Overlap returns the fraction of blocks in want that also appear in
// got, comparing only block identities. It is the accuracy metric used
// to evaluate bounded counters against exact counts.
func Overlap(want, got []BlockCount) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int64]bool, len(got))
	for _, g := range got {
		set[g.Block] = true
	}
	var hit int
	for _, w := range want {
		if set[w.Block] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
