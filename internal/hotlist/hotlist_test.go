package hotlist

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestExactCounts(t *testing.T) {
	e := NewExact()
	for i := 0; i < 5; i++ {
		e.Observe(100)
	}
	e.Observe(200)
	if e.Count(100) != 5 || e.Count(200) != 1 {
		t.Errorf("counts = %d, %d", e.Count(100), e.Count(200))
	}
	if e.Len() != 2 || e.Total() != 6 {
		t.Errorf("Len=%d Total=%d", e.Len(), e.Total())
	}
}

func TestExactTopOrder(t *testing.T) {
	e := NewExact()
	obs := map[int64]int{10: 3, 20: 7, 30: 5, 40: 7}
	for b, n := range obs {
		for i := 0; i < n; i++ {
			e.Observe(b)
		}
	}
	top := e.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) = %d entries", len(top))
	}
	// 20 and 40 tie at 7; lower block number first.
	if top[0].Block != 20 || top[1].Block != 40 || top[2].Block != 30 {
		t.Errorf("Top = %+v", top)
	}
}

func TestExactTopMoreThanLen(t *testing.T) {
	e := NewExact()
	e.Observe(1)
	if got := e.Top(10); len(got) != 1 {
		t.Errorf("Top(10) = %d entries", len(got))
	}
}

func TestExactReset(t *testing.T) {
	e := NewExact()
	e.Observe(1)
	e.Reset()
	if e.Len() != 0 || e.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestDistributionCoversAll(t *testing.T) {
	e := NewExact()
	for i := int64(0); i < 100; i++ {
		e.Observe(i % 10)
	}
	d := e.Distribution()
	if len(d) != 10 {
		t.Errorf("distribution has %d entries", len(d))
	}
	var sum int64
	for _, bc := range d {
		sum += bc.Count
	}
	if sum != 100 {
		t.Errorf("distribution sums to %d", sum)
	}
}

func TestBoundedStaysBounded(t *testing.T) {
	for _, policy := range []ReplacePolicy{ReplaceMin, EvictMin} {
		b := NewBounded(10, policy)
		for i := int64(0); i < 1000; i++ {
			b.Observe(i)
		}
		if b.Len() > 10 {
			t.Errorf("policy %d: Len = %d", policy, b.Len())
		}
		if b.Replacements() == 0 {
			t.Errorf("policy %d: no replacements on overflow", policy)
		}
	}
}

func TestBoundedNoReplacementWhenRoomy(t *testing.T) {
	b := NewBounded(100, ReplaceMin)
	for i := int64(0); i < 50; i++ {
		b.Observe(i)
		b.Observe(i)
	}
	if b.Replacements() != 0 {
		t.Errorf("replacements = %d with spare capacity", b.Replacements())
	}
	if b.Len() != 50 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestBoundedFindsHotBlocksInSkewedStream(t *testing.T) {
	// A bounded list far smaller than the block population must still
	// identify the hottest blocks of a skewed stream — the property the
	// analyzer relies on (Section 4.2).
	r := sim.NewRand(42)
	z := sim.NewZipf(10000, 1.3)
	exact := NewExact()
	bounded := NewBounded(500, ReplaceMin)
	for i := 0; i < 200000; i++ {
		blk := int64(z.Rank(r))
		exact.Observe(blk)
		bounded.Observe(blk)
	}
	overlap := Overlap(exact.Top(100), bounded.Top(100))
	if overlap < 0.9 {
		t.Errorf("bounded counter found %.0f%% of true top-100, want >= 90%%", overlap*100)
	}
}

func TestBothHeuristicsFindHotSetUnderChurn(t *testing.T) {
	// Even with heavy replacement churn (50k distinct blocks through a
	// 200-entry list), both heuristics must keep most of the true top-50.
	r := sim.NewRand(7)
	z := sim.NewZipf(50000, 1.1)
	exact := NewExact()
	rm := NewBounded(200, ReplaceMin)
	em := NewBounded(200, EvictMin)
	for i := 0; i < 300000; i++ {
		blk := int64(z.Rank(r))
		exact.Observe(blk)
		rm.Observe(blk)
		em.Observe(blk)
	}
	top := exact.Top(50)
	if got := Overlap(top, rm.Top(50)); got < 0.7 {
		t.Errorf("ReplaceMin overlap = %.2f, want >= 0.7", got)
	}
	if got := Overlap(top, em.Top(50)); got < 0.7 {
		t.Errorf("EvictMin overlap = %.2f, want >= 0.7", got)
	}
}

func TestReplaceMinAdaptsToShift(t *testing.T) {
	// When the hot set shifts, ReplaceMin lets the new hot blocks climb
	// onto a full list (newcomers inherit min+1).
	r := sim.NewRand(9)
	b := NewBounded(100, ReplaceMin)
	// Phase 1: blocks 0..99 hot.
	for i := 0; i < 20000; i++ {
		b.Observe(int64(r.Intn(100)))
	}
	// Phase 2: blocks 1000..1019 become the hottest.
	for i := 0; i < 40000; i++ {
		if r.Bool(0.8) {
			b.Observe(int64(1000 + r.Intn(20)))
		} else {
			b.Observe(int64(r.Intn(100)))
		}
	}
	top := b.Top(20)
	var newHot int
	for _, bc := range top {
		if bc.Block >= 1000 {
			newHot++
		}
	}
	if newHot < 15 {
		t.Errorf("only %d of top-20 are from the shifted hot set", newHot)
	}
}

func TestBoundedCapacityFloor(t *testing.T) {
	b := NewBounded(0, ReplaceMin)
	b.Observe(1)
	b.Observe(2)
	if b.Len() != 1 {
		t.Errorf("zero-capacity counter holds %d", b.Len())
	}
}

func TestOverlap(t *testing.T) {
	a := []BlockCount{{Block: 1}, {Block: 2}, {Block: 3}, {Block: 4}}
	b := []BlockCount{{Block: 2}, {Block: 4}, {Block: 9}}
	if got := Overlap(a, b); got != 0.5 {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
	if got := Overlap(nil, b); got != 1 {
		t.Errorf("Overlap(empty) = %v, want 1", got)
	}
}

func TestTopNeverExceedsK(t *testing.T) {
	f := func(blocks []uint8, k uint8) bool {
		e := NewExact()
		b := NewBounded(16, ReplaceMin)
		for _, blk := range blocks {
			e.Observe(int64(blk))
			b.Observe(int64(blk))
		}
		kk := int(k%32) + 1
		return len(e.Top(kk)) <= kk && len(b.Top(kk)) <= kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopSortedProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		e := NewExact()
		for _, blk := range blocks {
			e.Observe(int64(blk))
		}
		top := e.Top(len(blocks))
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count {
				return false
			}
			if top[i].Count == top[i-1].Count && top[i].Block < top[i-1].Block {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedReset(t *testing.T) {
	b := NewBounded(10, ReplaceMin)
	for i := int64(0); i < 100; i++ {
		b.Observe(i)
	}
	b.Reset()
	if b.Len() != 0 || b.Replacements() != 0 {
		t.Errorf("Reset left Len=%d Replacements=%d", b.Len(), b.Replacements())
	}
	// The list must keep counting normally after a reset.
	b.Observe(7)
	b.Observe(7)
	top := b.Top(1)
	if len(top) != 1 || top[0].Block != 7 || top[0].Count != 2 {
		t.Errorf("post-reset Top = %v", top)
	}
}
