package repro_test

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/fs"
)

// ExampleNewServer assembles an adaptive file server, writes a hot file,
// references it repeatedly, and rearranges the disk — the paper's whole
// mechanism in one function.
func ExampleNewServer() {
	srv, err := repro.NewServer(repro.ServerConfig{
		DiskModel: "toshiba",
		Policy:    "organ-pipe",
		MaxBlocks: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Create a file and read it repeatedly so its blocks become hot.
	var handle *fs.Handle
	srv.FS.Create("/hot", func(ino fs.Ino, err error) {
		if err != nil {
			log.Fatal(err)
		}
		handle, _ = srv.FS.OpenIno(ino)
		handle.WriteAt(0, 4, nil)
	})
	srv.RunFor(60_000)

	srv.StartMonitoring()
	for i := 0; i < 50; i++ {
		handle.ReadAt(0, 4, nil)
		srv.RunFor(1000)
	}
	srv.StopMonitoring()

	installed, err := srv.Rearrange()
	if err != nil {
		log.Fatal(err)
	}
	// The 4 data blocks plus the metadata blocks (inode table,
	// directory, descriptors) the accesses touched — 16 in all, which is
	// exactly the MaxBlocks budget.
	fmt.Printf("rearranged %d hot blocks into the reserved cylinders\n", installed)
	fmt.Printf("block table entries: %d\n", srv.Driver.BlockTableLen())
	// Output:
	// rearranged 16 hot blocks into the reserved cylinders
	// block table entries: 16
}
