// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5), plus the ablation benchmarks DESIGN.md calls
// out and micro-benchmarks of the hot code paths.
//
// Each table/figure benchmark runs the corresponding experiment at a
// compressed day window (the shapes are stable; see EXPERIMENTS.md for
// the full-window numbers) and reports its headline quantities via
// b.ReportMetric, so `go test -bench` output can be compared to the
// paper directly.
package repro_test

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/hotlist"
	"repro/internal/rig"
	"repro/internal/seek"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts compresses the measured window to one hour per day so the
// full -bench suite completes in minutes.
func benchOpts() experiment.Options {
	return experiment.Options{Days: 4, WindowMS: 1 * workload.HourMS}
}

func reportOnOff(b *testing.B, res *experiment.OnOff, side experiment.Side, prefix string) {
	b.Helper()
	for _, dr := range []struct {
		name string
		run  *experiment.Run
	}{{"tosh", res.Toshiba}, {"fuji", res.Fujitsu}} {
		offSum := experiment.Summarize(dr.run.OffDays(), dr.run.Curve, side)
		onSum := experiment.Summarize(dr.run.OnDays(), dr.run.Curve, side)
		b.ReportMetric(offSum.Seek.Avg(), prefix+dr.name+"_seekOff_ms")
		b.ReportMetric(onSum.Seek.Avg(), prefix+dr.name+"_seekOn_ms")
		b.ReportMetric(offSum.Service.Avg(), prefix+dr.name+"_svcOff_ms")
		b.ReportMetric(onSum.Service.Avg(), prefix+dr.name+"_svcOn_ms")
		b.ReportMetric(offSum.Wait.Avg(), prefix+dr.name+"_waitOff_ms")
		b.ReportMetric(onSum.Wait.Avg(), prefix+dr.name+"_waitOn_ms")
	}
}

// BenchmarkTable1SeekCurves validates the Table 1 seek-time models over
// every possible distance on both disks.
func BenchmarkTable1SeekCurves(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for d := 0; d < 815; d++ {
			sink += seek.ToshibaMK156F.SeekMS(d)
		}
		for d := 0; d < 1658; d++ {
			sink += seek.FujitsuM2266.SeekMS(d)
		}
	}
	b.ReportMetric(seek.ToshibaMK156F.SeekMS(815/3), "toshAvgThirdStroke_ms")
	b.ReportMetric(seek.FujitsuM2266.SeekMS(1658/3), "fujiAvgThirdStroke_ms")
	_ = sink
}

// BenchmarkTable2OnOffSystem regenerates Table 2: on/off daily means,
// system file system, both disks. Paper: seek ~19.5 -> ~1.2 ms
// (Toshiba), ~8.1 -> ~0.9 ms (Fujitsu).
func BenchmarkTable2OnOffSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "system", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportOnOff(b, res, experiment.AllRequests, "")
	}
}

// BenchmarkTable3DayDetail regenerates Table 3: per-day detail including
// FCFS baselines and zero-length-seek fractions. Paper: zero-length
// seeks jump from ~25% to 76-88%.
func BenchmarkTable3DayDetail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "system", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rep := experiment.Table3(res)
		if len(rep.Rows) == 0 {
			b.Fatal("empty table")
		}
		for _, dr := range []*experiment.Run{res.Toshiba, res.Fujitsu} {
			offs, ons := dr.OffDays(), dr.OnDays()
			off := offs[len(offs)-1].Metrics(dr.Curve, experiment.AllRequests)
			on := ons[len(ons)-1].Metrics(dr.Curve, experiment.AllRequests)
			b.ReportMetric(off.ZeroSeekPct, dr.Setup.DiskName+"_zeroOff_pct")
			b.ReportMetric(on.ZeroSeekPct, dr.Setup.DiskName+"_zeroOn_pct")
			b.ReportMetric(off.FCFSDist, dr.Setup.DiskName+"_fcfsDist_cyl")
		}
	}
}

// BenchmarkTable4ReadsOnly regenerates Table 4: the system experiment
// restricted to reads. Paper: reads improve less than the full workload.
func BenchmarkTable4ReadsOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "system", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportOnOff(b, res, experiment.ReadsOnly, "rd_")
	}
}

// BenchmarkTable5OnOffUsers regenerates Table 5: the users file system.
// Paper: seek reductions only ~30-35%.
func BenchmarkTable5OnOffUsers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "users", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportOnOff(b, res, experiment.AllRequests, "")
	}
}

// BenchmarkTable6UsersReads regenerates Table 6: users, reads only.
func BenchmarkTable6UsersReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "users", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportOnOff(b, res, experiment.ReadsOnly, "rd_")
	}
}

func policyOpts() experiment.Options {
	return experiment.Options{Days: 3, WindowMS: 1 * workload.HourMS}
}

// BenchmarkTable7Policies regenerates Table 7: percentage seek-time
// reduction per placement policy. Paper: organ-pipe >= interleaved >>
// serial on both disks.
func BenchmarkTable7Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPolicies(context.Background(), policyOpts())
		if err != nil {
			b.Fatal(err)
		}
		for d, runs := range res.Runs {
			for p, run := range runs {
				ons := run.OnDays()
				var sum float64
				for _, day := range ons {
					sum += experiment.SeekReductionPct(day.Metrics(run.Curve, experiment.AllRequests))
				}
				b.ReportMetric(sum/float64(len(ons)), d+"_"+p+"_redPct")
			}
		}
	}
}

// BenchmarkTable8PolicyToshiba regenerates Table 8: per-policy detail on
// the Toshiba disk, including zero-length-seek fractions (paper: 88/83/26).
func BenchmarkTable8PolicyToshiba(b *testing.B) {
	benchmarkPolicyDetail(b, "toshiba")
}

// BenchmarkTable9PolicyFujitsu regenerates Table 9: the Fujitsu detail.
func BenchmarkTable9PolicyFujitsu(b *testing.B) {
	benchmarkPolicyDetail(b, "fujitsu")
}

func benchmarkPolicyDetail(b *testing.B, diskName string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPolicies(context.Background(), policyOpts())
		if err != nil {
			b.Fatal(err)
		}
		for p, run := range res.Runs[diskName] {
			ons := run.OnDays()
			on := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			b.ReportMetric(on.ZeroSeekPct, p+"_zero_pct")
			b.ReportMetric(on.SeekMS, p+"_seek_ms")
			b.ReportMetric(on.ServiceMS, p+"_svc_ms")
		}
	}
}

// BenchmarkTable10Rotational regenerates Table 10: rotational latency +
// transfer time per placement policy (Toshiba, reads). Paper: organ-pipe
// and serial add ~1 ms vs no rearrangement; interleaved preserves it.
func BenchmarkTable10Rotational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPolicies(context.Background(), policyOpts())
		if err != nil {
			b.Fatal(err)
		}
		orgRun := res.Runs["toshiba"]["organ-pipe"]
		off := orgRun.OffDays()
		b.ReportMetric(off[len(off)-1].Metrics(orgRun.Curve, experiment.ReadsOnly).RotTransferMS, "none_ms")
		for p, run := range res.Runs["toshiba"] {
			ons := run.OnDays()
			on := ons[len(ons)-1].Metrics(run.Curve, experiment.ReadsOnly)
			b.ReportMetric(on.RotTransferMS, p+"_ms")
		}
	}
}

// BenchmarkFigure4ServiceCDF regenerates Figure 4: the service-time CDFs
// of an off and an on day (system fs, Fujitsu). Paper anchor at 20 ms:
// off ~0.50, on ~0.85.
func BenchmarkFigure4ServiceCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "system", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		offs, ons := res.Fujitsu.OffDays(), res.Fujitsu.OnDays()
		off := offs[len(offs)-1].Stats.All().Service
		on := ons[len(ons)-1].Stats.All().Service
		b.ReportMetric(off.FracBelow(20), "offAt20ms_frac")
		b.ReportMetric(on.FracBelow(20), "onAt20ms_frac")
	}
}

// BenchmarkFigure5AccessDist regenerates Figure 5: the system file
// system's block-access distribution. Paper: top-100 blocks absorb ~90%
// of requests; fewer than 2000 distinct blocks are touched.
func BenchmarkFigure5AccessDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "system", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		offs := res.Toshiba.OffDays()
		dist := offs[len(offs)-1].AccessDist
		b.ReportMetric(share(dist, 100), "top100_frac")
		b.ReportMetric(float64(len(dist)), "distinctBlocks")
	}
}

// BenchmarkFigure6UsersCDF regenerates Figure 6: users-fs service CDFs.
func BenchmarkFigure6UsersCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "users", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		offs, ons := res.Fujitsu.OffDays(), res.Fujitsu.OnDays()
		off := offs[len(offs)-1].Stats.All().Service
		on := ons[len(ons)-1].Stats.All().Service
		b.ReportMetric(off.FracBelow(20), "offAt20ms_frac")
		b.ReportMetric(on.FracBelow(20), "onAt20ms_frac")
	}
}

// BenchmarkFigure7UsersAccessDist regenerates Figure 7: the users file
// system's flatter distribution.
func BenchmarkFigure7UsersAccessDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnOff(context.Background(), "users", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		offs := res.Toshiba.OffDays()
		dist := offs[len(offs)-1].AccessDist
		b.ReportMetric(share(dist, 100), "top100_frac")
		b.ReportMetric(float64(len(dist)), "distinctBlocks")
	}
}

// BenchmarkFigure8BlockSweep regenerates Figure 8: seek reduction vs the
// number of rearranged blocks. Paper: a steep knee near ~100 blocks.
func BenchmarkFigure8BlockSweep(b *testing.B) {
	counts := []int{25, 100, 400, 1018}
	for i := 0; i < b.N; i++ {
		points, err := experiment.RunBlockSweep(context.Background(),
			experiment.Options{Days: 2, WindowMS: 1 * workload.HourMS}, counts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.TimeRedPct, nameOfInt(p.Blocks)+"blocks_redPct")
		}
	}
}

// BenchmarkAblationScheduling quantifies the SCAN/rearrangement synergy
// claim of Section 5.2 by running the rearranged system under four head
// schedulers.
func BenchmarkAblationScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []string{"fcfs", "scan", "cscan", "sstf"} {
			run, err := experiment.Execute(context.Background(), experiment.Setup{
				Sched: s, Days: 2, WindowMS: 1 * workload.HourMS,
				OnPattern: func(day int) bool { return day > 0 },
			})
			if err != nil {
				b.Fatal(err)
			}
			ons := run.OnDays()
			m := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			b.ReportMetric(m.SeekMS, s+"_seekOn_ms")
			b.ReportMetric(m.WaitMS, s+"_waitOn_ms")
			b.ReportMetric(m.ZeroSeekPct, s+"_zeroOn_pct")
		}
	}
}

// BenchmarkAblationHotlistSize compares bounded analyzer lists against
// the exact counter (the space-efficient estimation claim of [Salem 93]).
func BenchmarkAblationHotlistSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{64, 256, 1024, 0} { // 0 = exact
			run, err := experiment.Execute(context.Background(), experiment.Setup{
				HotlistSize: size, Days: 2, WindowMS: 1 * workload.HourMS,
				OnPattern: func(day int) bool { return day > 0 },
			})
			if err != nil {
				b.Fatal(err)
			}
			ons := run.OnDays()
			m := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			name := "exact"
			if size > 0 {
				name = nameOfInt(size)
			}
			b.ReportMetric(m.SeekMS, name+"_seekOn_ms")
		}
	}
}

// BenchmarkAblationReservedLocation tests the organ-pipe assumption that
// the reserved region belongs at the disk's center, against an
// edge-located region of the same size.
func BenchmarkAblationReservedLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, loc := range []struct {
			name  string
			first int
		}{{"center", 0}, {"edge", 4}} {
			run, err := experiment.Execute(context.Background(), experiment.Setup{
				ReservedFirstCyl: loc.first, Days: 2, WindowMS: 1 * workload.HourMS,
				OnPattern: func(day int) bool { return day > 0 },
			})
			if err != nil {
				b.Fatal(err)
			}
			ons := run.OnDays()
			m := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			b.ReportMetric(m.SeekMS, loc.name+"_seekOn_ms")
		}
	}
}

// BenchmarkAblationMonitorPeriod varies the analyzer's request-table
// polling period around the paper's two minutes.
func BenchmarkAblationMonitorPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, period := range []float64{30_000, 120_000, 600_000} {
			run, err := experiment.Execute(context.Background(), experiment.Setup{
				PollPeriodMS: period, Days: 2, WindowMS: 1 * workload.HourMS,
				OnPattern: func(day int) bool { return day > 0 },
			})
			if err != nil {
				b.Fatal(err)
			}
			ons := run.OnDays()
			m := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			b.ReportMetric(m.SeekMS, nameOfInt(int(period/1000))+"s_seekOn_ms")
		}
	}
}

// BenchmarkAblationCylinderShuffle compares block-granularity
// rearrangement against the cylinder-granularity baseline of
// [Vongsath 90] (same data volume, coarser choice), supporting the
// paper's granularity argument.
func BenchmarkAblationCylinderShuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []string{"organ-pipe", "cylinder"} {
			run, err := experiment.Execute(context.Background(), experiment.Setup{
				Policy: p, Days: 2, WindowMS: 1 * workload.HourMS,
				OnPattern: func(day int) bool { return day > 0 },
			})
			if err != nil {
				b.Fatal(err)
			}
			ons := run.OnDays()
			m := ons[len(ons)-1].Metrics(run.Curve, experiment.AllRequests)
			b.ReportMetric(m.SeekMS, p+"_seekOn_ms")
			b.ReportMetric(m.ZeroSeekPct, p+"_zeroOn_pct")
		}
	}
}

// BenchmarkAblationIncrementalRearrange compares the I/O cost of a full
// daily rearrangement cycle (clean everything + copy everything) against
// the incremental cycle that moves only the day-to-day difference — the
// benefit the paper credits block granularity with (Section 1.1).
func BenchmarkAblationIncrementalRearrange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := rig.New(rig.Options{ReservedCyls: 48})
		if err != nil {
			b.Fatal(err)
		}
		ra, err := core.New(r.Eng, r.Driver, core.Config{MaxBlocks: 400})
		if err != nil {
			b.Fatal(err)
		}
		rnd := sim.NewRand(11)
		nblocks := r.PartitionBlocks(0)
		hot := make([]int64, 400)
		for j := range hot {
			hot[j] = rnd.Int63n(nblocks)
		}
		day := func() {
			for j, blk := range hot {
				for k := 0; k < 400-j/2; k += 40 {
					r.Driver.ReadBlock(0, blk, nil)
				}
			}
			r.Eng.Run()
		}
		// Day 1 trains; full rearrangement installs everything.
		day()
		ra.Poll()
		ra.Rearrange(nil)
		r.Eng.Run()

		// Day 2 drifts slightly: a handful of ranks change.
		ra.ResetCounts()
		for j := 0; j < 10; j++ {
			hot[rnd.Intn(len(hot))] = rnd.Int63n(nblocks)
		}
		day()
		ra.Poll()

		// Full cycle cost vs incremental cycle cost, in internal disk
		// operations (reads+writes observed at the disk).
		r0r, r0w, _ := r.Disk.Counters()
		var fullMoved int
		ra.RearrangeIncremental(func(n int, err error) {
			if err != nil {
				b.Fatal(err)
			}
			fullMoved = n
		})
		r.Eng.Run()
		r1r, r1w, _ := r.Disk.Counters()
		b.ReportMetric(float64(fullMoved), "incrementalMoved_blocks")
		b.ReportMetric(float64((r1r-r0r)+(r1w-r0w)), "incrementalIOs")
		b.ReportMetric(400, "fullCycleMoved_blocks")
	}
}

// BenchmarkDriverStrategy measures the driver's per-request overhead
// (address translation, block-table lookup, queueing, dispatch).
func BenchmarkDriverStrategy(b *testing.B) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		b.Fatal(err)
	}
	nblocks := r.PartitionBlocks(0)
	rnd := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Driver.ReadBlock(0, rnd.Int63n(nblocks), nil)
		if i%64 == 63 {
			r.Eng.Run()
		}
	}
	r.Eng.Run()
}

// BenchmarkPlacementPolicies measures the arranger's placement
// computation for a full reserved region.
func BenchmarkPlacementPolicies(b *testing.B) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		b.Fatal(err)
	}
	slots := r.Driver.ReservedSlots()
	hot := make([]hotlist.BlockCount, 2000)
	for i := range hot {
		hot[i] = hotlist.BlockCount{Block: int64(i) * 16 * 7, Count: int64(2000 - i)}
	}
	for _, name := range []string{"organ-pipe", "interleaved", "serial"} {
		b.Run(name, func(b *testing.B) {
			p, err := core.NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if moves := p.Place(hot, slots, 1018, geom.Block8K); len(moves) == 0 {
					b.Fatal("no moves")
				}
			}
		})
	}
}

// BenchmarkDiskModel measures the mechanical disk model's service
// computation.
func BenchmarkDiskModel(b *testing.B) {
	d := disk.MustNew(disk.Toshiba())
	rnd := sim.NewRand(1)
	total := d.Geom().TotalSectors()
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rnd.Int63n(total-16) / 16 * 16
		_, tm, err := d.Read(now, s, 16)
		if err != nil {
			b.Fatal(err)
		}
		now += tm.TotalMS()
	}
}

func share(dist []hotlist.BlockCount, k int) float64 {
	var tot, top int64
	for i, bc := range dist {
		tot += bc.Count
		if i < k {
			top += bc.Count
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(top) / float64(tot)
}

func nameOfInt(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
