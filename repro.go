// Package repro is a Go reproduction of "Adaptive Block Rearrangement"
// (Akyürek & Salem, ICDE 1993), built from the authors' UNIX
// implementation report (CS-TR-3054.1, "Adaptive Block Rearrangement
// Under UNIX").
//
// The library implements the complete system in simulation: seekable
// disk models of the paper's two drives, the modified SCSI device driver
// with its block table and reserved region, an FFS-style file system
// with a buffer cache, the reference stream analyzer and block arranger
// with the paper's three placement policies, and the file-server
// workloads of the evaluation. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduced tables and figures.
//
// This package is the assembled-stack facade: it wires a disk, driver,
// file system and rearranger together the way the paper's server
// "Sakarya" was set up, and exposes the pieces for direct use. The
// subsystems themselves live in internal/... packages; the cmd/ tools
// and examples/ programs show typical use.
package repro

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fs"
	"repro/internal/geom"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ServerConfig describes an adaptive file server to assemble.
type ServerConfig struct {
	// DiskModel selects the drive: "toshiba" (MK156F, 135 MB) or
	// "fujitsu" (M2266, 1 GB). Empty selects "toshiba".
	DiskModel string
	// ReservedCyls hides this many middle cylinders as the reserved
	// region; zero selects the paper's 48 (Toshiba) or 80 (Fujitsu).
	ReservedCyls int
	// Policy is the placement policy: "organ-pipe" (default),
	// "interleaved" or "serial".
	Policy string
	// Sched is the head-scheduling policy: "scan" (default), "fcfs",
	// "cscan" or "sstf".
	Sched string
	// MaxBlocks caps how many blocks are rearranged per cycle; zero
	// means as many as fit.
	MaxBlocks int
	// CacheBlocks and MetaCacheBlocks size the file system's data and
	// metadata caches (defaults 512 each).
	CacheBlocks     int
	MetaCacheBlocks int
	// ReadOnly mounts the file system read-only after creation.
	ReadOnly bool
}

// Server is an assembled adaptive file server: simulation engine, disk,
// adaptive driver, file system, and rearrangement controller.
type Server struct {
	Eng        *sim.Engine
	Disk       *disk.Disk
	Driver     *driver.Driver
	FS         *fs.FS
	Rearranger *core.Rearranger
}

// NewServer formats a fresh disk per the configuration, mounts a file
// system on it, and starts the file system's update daemon.
func NewServer(cfg ServerConfig) (*Server, error) {
	var model disk.Model
	switch cfg.DiskModel {
	case "", "toshiba":
		model = disk.Toshiba()
		if cfg.ReservedCyls == 0 {
			cfg.ReservedCyls = 48
		}
	case "fujitsu":
		model = disk.Fujitsu()
		if cfg.ReservedCyls == 0 {
			cfg.ReservedCyls = 80
		}
	default:
		return nil, fmt.Errorf("repro: unknown disk model %q", cfg.DiskModel)
	}
	if cfg.Policy == "" {
		cfg.Policy = "organ-pipe"
	}
	var schedPolicy sched.Scheduler
	if cfg.Sched != "" {
		var err error
		schedPolicy, err = sched.New(cfg.Sched)
		if err != nil {
			return nil, err
		}
	}
	r, err := rig.New(rig.Options{
		Disk:         model,
		ReservedCyls: cfg.ReservedCyls,
		Sched:        schedPolicy,
	})
	if err != nil {
		return nil, err
	}
	fsys, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache:     cache.Config{CapacityBlocks: cfg.CacheBlocks},
		MetaCache: cache.Config{CapacityBlocks: cfg.MetaCacheBlocks},
	})
	if err != nil {
		return nil, err
	}
	r.Eng.Run()
	if cfg.ReadOnly {
		fsys.SetReadOnly(true)
	}
	fsys.StartSyncDaemon()

	policy, err := core.NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	rear, err := core.New(r.Eng, r.Driver, core.Config{
		Policy:    policy,
		MaxBlocks: cfg.MaxBlocks,
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		Eng:        r.Eng,
		Disk:       r.Disk,
		Driver:     r.Driver,
		FS:         fsys,
		Rearranger: rear,
	}, nil
}

// RunFor advances simulated time by ms milliseconds, executing all due
// events (the update daemons run forever, so use RunFor rather than the
// engine's Run).
func (s *Server) RunFor(ms float64) {
	s.Eng.RunUntil(s.Eng.Now() + ms)
}

// StartMonitoring begins the reference stream analyzer's periodic
// polling of the driver's request table.
func (s *Server) StartMonitoring() { s.Rearranger.StartMonitoring() }

// StopMonitoring stops polling and drains the final request batch.
func (s *Server) StopMonitoring() { s.Rearranger.StopMonitoring() }

// Rearrange runs one rearrangement cycle with the hot blocks observed
// since the last ResetCounts, then resets the counts for the next
// measurement window. It blocks (in simulated time) until the blocks
// have been copied, and returns how many were installed.
func (s *Server) Rearrange() (int, error) {
	var installed int
	var rerr error
	done := false
	s.Rearranger.Rearrange(func(n int, err error) {
		installed, rerr, done = n, err, true
	})
	for i := 0; !done && i < 10000; i++ {
		s.RunFor(60_000)
	}
	if !done {
		return 0, fmt.Errorf("repro: rearrangement did not complete")
	}
	s.Rearranger.ResetCounts()
	return installed, rerr
}

// Clean empties the reserved region, restoring dirty blocks to their
// original locations.
func (s *Server) Clean() error {
	var cerr error
	done := false
	s.Rearranger.CleanOnly(func(err error) { cerr, done = err, true })
	for i := 0; !done && i < 10000; i++ {
		s.RunFor(60_000)
	}
	if !done {
		return fmt.Errorf("repro: clean did not complete")
	}
	return cerr
}

// Stats returns and clears the driver's measurement tables.
func (s *Server) Stats() *driver.Stats { return s.Driver.ReadStats() }

// BlockSize returns the file system block size in bytes.
func (s *Server) BlockSize() int { return geom.Block8K.Bytes() }
