package repro_test

import (
	"testing"

	repro "repro"
	"repro/internal/fs"
	"repro/internal/seek"
	"repro/internal/sim"
)

func newServer(t *testing.T, cfg repro.ServerConfig) *repro.Server {
	t.Helper()
	srv, err := repro.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestNewServerDefaults(t *testing.T) {
	srv := newServer(t, repro.ServerConfig{})
	if srv.Disk.Model().Name != "Toshiba MK156F" {
		t.Errorf("default disk = %q", srv.Disk.Model().Name)
	}
	if !srv.Driver.Rearranged() {
		t.Error("server disk not rearranged")
	}
	if _, count := srv.Driver.Label().ReservedCyls(); count != 48 {
		t.Errorf("reserved cylinders = %d", count)
	}
	if srv.Rearranger.Policy().Name() != "organ-pipe" {
		t.Errorf("default policy = %q", srv.Rearranger.Policy().Name())
	}
	if srv.BlockSize() != 8192 {
		t.Errorf("block size = %d", srv.BlockSize())
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := repro.NewServer(repro.ServerConfig{DiskModel: "ssd"}); err == nil {
		t.Error("unknown disk accepted")
	}
	if _, err := repro.NewServer(repro.ServerConfig{Policy: "random"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := repro.NewServer(repro.ServerConfig{Sched: "lifo"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestServerEndToEnd(t *testing.T) {
	// A small data cache so the skewed read stream actually reaches the
	// disk (the experiment harness models cache pressure instead).
	srv := newServer(t, repro.ServerConfig{MaxBlocks: 100, CacheBlocks: 8})

	// Build a small tree and drive a skewed workload.
	var handles []*fs.Handle
	for i := 0; i < 100; i++ {
		srv.FS.Create("/f"+string(rune('a'+i/10))+string(rune('0'+i%10)), func(ino fs.Ino, err error) {
			if err != nil {
				t.Fatal(err)
			}
			h, _ := srv.FS.OpenIno(ino)
			h.WriteAt(0, 3, nil)
			handles = append(handles, h)
		})
	}
	srv.RunFor(120_000)
	if len(handles) != 100 {
		t.Fatalf("created %d files", len(handles))
	}

	rnd := sim.NewRand(3)
	zipf := sim.NewZipf(len(handles), 1.5)
	day := func() {
		for i := 0; i < 2000; i++ {
			h := handles[zipf.Rank(rnd)]
			srv.Eng.After(float64(i)*30, func() { h.ReadAt(0, 1, nil) })
		}
		srv.RunFor(2000*30 + 120_000)
	}

	srv.StartMonitoring()
	srv.Stats()
	day()
	srv.StopMonitoring()
	before := srv.Stats().All()

	installed, err := srv.Rearrange()
	if err != nil {
		t.Fatal(err)
	}
	if installed == 0 {
		t.Fatal("nothing rearranged")
	}

	day()
	after := srv.Stats().All()
	if after.MeanSeekMS(seek.ToshibaMK156F) >= before.MeanSeekMS(seek.ToshibaMK156F) {
		t.Errorf("rearrangement did not reduce seek time: %.2f -> %.2f",
			before.MeanSeekMS(seek.ToshibaMK156F), after.MeanSeekMS(seek.ToshibaMK156F))
	}

	// Clean restores the original layout.
	if err := srv.Clean(); err != nil {
		t.Fatal(err)
	}
	if srv.Driver.BlockTableLen() != 0 {
		t.Errorf("%d blocks still rearranged after Clean", srv.Driver.BlockTableLen())
	}
}

func TestServerReadOnly(t *testing.T) {
	srv := newServer(t, repro.ServerConfig{ReadOnly: true})
	var cerr error
	srv.FS.Create("/x", func(_ fs.Ino, err error) { cerr = err })
	srv.RunFor(60_000)
	if cerr == nil {
		t.Error("create succeeded on read-only server")
	}
}

func TestServerFujitsu(t *testing.T) {
	srv := newServer(t, repro.ServerConfig{DiskModel: "fujitsu", Policy: "interleaved", Sched: "cscan"})
	if _, count := srv.Driver.Label().ReservedCyls(); count != 80 {
		t.Errorf("reserved cylinders = %d", count)
	}
	if srv.Rearranger.Policy().Name() != "interleaved" {
		t.Errorf("policy = %q", srv.Rearranger.Policy().Name())
	}
}
